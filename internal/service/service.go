// Package service implements mining-as-a-service: a resident query server
// over one Khuzdul cluster. The cluster stays up with partitions loaded and
// caches warm; concurrent clients connect over the framed TCP wire, submit
// pattern queries (named pattern, edge list, or a previously compiled
// plan), and receive streamed partial counts plus a terminal result per
// query.
//
// Three mechanisms keep a multi-tenant server honest:
//
//   - Admission control. A bounded window of concurrently executing
//     queries; submissions beyond it are rejected immediately with a
//     retryable status instead of queueing without bound.
//   - Worker budgets. Each admitted query runs with a per-socket thread
//     budget (by default the cluster's threads split across the window), so
//     one heavy 5-motif query cannot starve point lookups.
//   - Cancellation. An explicit CANCEL frame or the client's disconnect
//     closes the query's cancel channel, which aborts every engine at its
//     next range or batch boundary and abandons in-flight remote fetches
//     through the resilient layer — a canceled query releases its admission
//     slot promptly even mid-fetch.
package service

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"khuzdul/internal/cluster"
	"khuzdul/internal/comm"
	"khuzdul/internal/core"
	"khuzdul/internal/metrics"
	"khuzdul/internal/plan"
)

// Config tunes the query server. The zero value listens on an ephemeral
// loopback port with a window of DefaultMaxConcurrent queries.
type Config struct {
	// Addr is the listen address (default "127.0.0.1:0"; the actual address
	// is available from Server.Addr).
	Addr string
	// MaxConcurrent is the admission window: queries executing at once
	// across all connections (default DefaultMaxConcurrent).
	MaxConcurrent int
	// WorkerBudget is the per-socket engine thread count each query runs
	// with (default: the cluster's ThreadsPerSocket divided across the
	// admission window, at least 1).
	WorkerBudget int
	// ProgressInterval is the period between streamed partial counts
	// (default DefaultProgressInterval; negative disables streaming).
	ProgressInterval time.Duration
	// IOTimeout bounds each frame write to a client (default
	// DefaultIOTimeout); a stalled client cannot pin a query goroutine.
	IOTimeout time.Duration
}

// Defaults for Config's zero fields.
const (
	DefaultMaxConcurrent    = 4
	DefaultProgressInterval = 25 * time.Millisecond
	DefaultIOTimeout        = 10 * time.Second
)

// Server is a running query service over one resident cluster.
type Server struct {
	cl  *cluster.Cluster
	cfg Config
	reg *registry
	met *metrics.Service
	ln  net.Listener
	// admit is the admission window: a token held per executing query.
	admit  chan struct{}
	budget int
	nslots int // NumNodes × Sockets, for progress-sink preallocation

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
}

// New starts a query server over cl. The cluster must outlive the server
// and must not have speculation enabled — speculation assumes it owns the
// whole cluster per run, while the service schedules queries itself.
func New(cl *cluster.Cluster, cfg Config) (*Server, error) {
	ccfg := cl.Config()
	if ccfg.Speculate {
		return nil, errors.New("service: clusters with Speculate are not servable; the service schedules queries itself")
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = DefaultMaxConcurrent
	}
	if cfg.ProgressInterval == 0 {
		cfg.ProgressInterval = DefaultProgressInterval
	}
	if cfg.IOTimeout == 0 {
		cfg.IOTimeout = DefaultIOTimeout
	}
	budget := cfg.WorkerBudget
	if budget <= 0 {
		budget = ccfg.ThreadsPerSocket / cfg.MaxConcurrent
		if budget < 1 {
			budget = 1
		}
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("service: listen: %w", err)
	}
	s := &Server{
		cl:     cl,
		cfg:    cfg,
		reg:    newRegistry(cl.Graph()),
		met:    &metrics.Service{},
		ln:     ln,
		admit:  make(chan struct{}, cfg.MaxConcurrent),
		budget: budget,
		nslots: ccfg.NumNodes * ccfg.Sockets,
		conns:  make(map[net.Conn]struct{}),
		closed: make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's actual listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Metrics returns the live service counters.
func (s *Server) Metrics() *metrics.Service { return s.met }

// SummaryLine renders the service counters in the CLI summary style.
func (s *Server) SummaryLine() string { return s.met.SummaryLine() }

// Close stops accepting, severs every client connection (which cancels
// their in-flight queries), and joins all server goroutines.
func (s *Server) Close() error {
	s.closeOnce.Do(func() { close(s.closed) })
	err := s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// acceptLoop admits client connections until the listener closes.
//
//khuzdulvet:longrun
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			// Listener closed (Close) or a fatal accept error; either way
			// the server stops admitting.
			return
		}
		s.mu.Lock()
		if chanClosed(s.closed) {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(c)
	}
}

// chanClosed reports whether the cancel/close signal has fired.
func chanClosed(closed <-chan struct{}) bool {
	select {
	case <-closed:
		return true
	default:
		return false
	}
}

// connState tracks one client connection's in-flight queries: the cancel
// channel per active query ID plus the join group for its query goroutines.
type connState struct {
	qc *comm.QueryConn
	wg sync.WaitGroup

	mu     sync.Mutex
	active map[uint32]chan struct{}
}

// begin registers a query and returns its cancel channel, or false when the
// ID is already in flight on this connection.
func (st *connState) begin(id uint32) (chan struct{}, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, dup := st.active[id]; dup {
		return nil, false
	}
	ch := make(chan struct{})
	st.active[id] = ch
	return ch, true
}

// cancelQuery closes one query's cancel channel (idempotent: an already
// finished or canceled ID is a no-op).
func (st *connState) cancelQuery(id uint32) bool {
	st.mu.Lock()
	ch, ok := st.active[id]
	delete(st.active, id)
	st.mu.Unlock()
	if ok {
		close(ch)
	}
	return ok
}

// finish retires a completed query's registration.
func (st *connState) finish(id uint32) {
	st.mu.Lock()
	delete(st.active, id)
	st.mu.Unlock()
}

// cancelAll aborts every in-flight query (client disconnect, server close).
func (st *connState) cancelAll() {
	st.mu.Lock()
	for id, ch := range st.active {
		close(ch)
		delete(st.active, id)
	}
	st.mu.Unlock()
}

// serveConn runs one client connection: handshake, then the dispatch loop
// reading submissions and cancels until the client disconnects. Disconnect
// — deliberate or not — cancels every query the connection still has in
// flight: results would have nowhere to go.
//
//khuzdulvet:longrun
func (s *Server) serveConn(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
	defer c.Close()
	qc, err := comm.AcceptQuery(c, s.cfg.IOTimeout)
	if err != nil {
		return
	}
	st := &connState{qc: qc, active: make(map[uint32]chan struct{})}
dispatch:
	for {
		if chanClosed(s.closed) {
			break
		}
		msg, err := qc.ReadMsg()
		if err != nil {
			break
		}
		switch m := msg.(type) {
		case *comm.QuerySubmit:
			s.submit(st, m)
		case *comm.QueryCancel:
			st.cancelQuery(m.ID)
		default:
			// Clients must not send server-side frames; the connection's
			// framing discipline is broken, so drop it.
			break dispatch
		}
	}
	st.cancelAll()
	st.wg.Wait()
}

// submit applies admission control to one submission and, if admitted,
// launches its query goroutine. Called from the connection's dispatch
// goroutine, so per-connection submission order is preserved.
func (s *Server) submit(st *connState, sub *comm.QuerySubmit) {
	s.met.QueriesSubmitted.Add(1)
	select {
	case s.admit <- struct{}{}:
	default:
		s.met.QueriesRejected.Add(1)
		st.qc.WriteResult(&comm.QueryResult{
			ID:     sub.ID,
			Status: comm.QueryRejected,
			Detail: fmt.Sprintf("admission window full (%d queries executing); retry after a result returns", s.cfg.MaxConcurrent),
		})
		return
	}
	cancel, ok := st.begin(sub.ID)
	if !ok {
		<-s.admit
		s.met.QueriesFailed.Add(1)
		st.qc.WriteResult(&comm.QueryResult{
			ID:     sub.ID,
			Status: comm.QueryFailed,
			Detail: fmt.Sprintf("query id %d is already in flight on this connection", sub.ID),
		})
		return
	}
	st.wg.Add(1)
	sub2 := *sub
	go s.runQuery(st, &sub2, cancel)
}

// runQuery executes one admitted query end to end: resolve the plan,
// stream progress while the cluster runs it under this query's cancel
// channel and worker budget, and deliver the terminal result.
func (s *Server) runQuery(st *connState, sub *comm.QuerySubmit, cancel chan struct{}) {
	defer st.wg.Done()
	defer func() { <-s.admit }()
	defer st.finish(sub.ID)
	cur := s.met.ActiveQueries.Add(1)
	if cur > 0 {
		s.met.RecordActivePeak(uint64(cur))
	}
	defer s.met.ActiveQueries.Add(-1)

	planID, pl, err := s.reg.resolve(sub)
	if err != nil {
		s.met.QueriesFailed.Add(1)
		st.qc.WriteResult(&comm.QueryResult{ID: sub.ID, Status: comm.QueryFailed, Detail: err.Error()})
		return
	}
	if chanClosed(cancel) {
		s.met.QueriesCanceled.Add(1)
		st.qc.WriteResult(&comm.QueryResult{ID: sub.ID, Status: comm.QueryCanceled, PlanID: planID})
		return
	}

	start := time.Now()
	res, runErr := s.runPlan(st, sub.ID, pl, cancel)
	elapsed := time.Since(start)
	s.met.AddQueryDuration(elapsed)
	switch {
	case runErr == nil:
		s.met.QueriesOK.Add(1)
		st.qc.WriteResult(&comm.QueryResult{
			ID: sub.ID, Status: comm.QueryOK, PlanID: planID,
			Count: res.Count, Elapsed: elapsed,
		})
	case errors.Is(runErr, cluster.ErrRunCanceled):
		s.met.QueriesCanceled.Add(1)
		st.qc.WriteResult(&comm.QueryResult{
			ID: sub.ID, Status: comm.QueryCanceled, PlanID: planID, Elapsed: elapsed,
		})
	default:
		s.met.QueriesFailed.Add(1)
		st.qc.WriteResult(&comm.QueryResult{
			ID: sub.ID, Status: comm.QueryFailed, PlanID: planID,
			Elapsed: elapsed, Detail: runErr.Error(),
		})
	}
}

// runPlan executes pl on the resident cluster with this query's budget and
// cancel channel, streaming partial counts while it runs. Sinks are
// preallocated per (node, socket) slot so the progress goroutine can read
// their atomic counters concurrently with the run.
func (s *Server) runPlan(st *connState, id uint32, pl *plan.Plan, cancel <-chan struct{}) (cluster.Result, error) {
	sinks := make([]*core.CountSink, s.nslots)
	for i := range sinks {
		sinks[i] = &core.CountSink{}
	}
	sockets := s.cl.Config().Sockets
	factory := func(node, socket int) core.Sink { return sinks[node*sockets+socket] }

	done := make(chan struct{})
	var pwg sync.WaitGroup
	if s.cfg.ProgressInterval > 0 {
		pwg.Add(1)
		go s.streamProgress(st, id, sinks, cancel, done, &pwg)
	}
	res, err := s.cl.RunWith(pl, factory, cluster.RunOpts{
		Cancel:           cancel,
		ThreadsPerSocket: s.budget,
		KeepMetrics:      true,
	})
	close(done)
	pwg.Wait()
	return res, err
}

// streamProgress periodically sums the query's sink counters and streams
// the partial count to the client, until the run finishes or the query is
// canceled.
func (s *Server) streamProgress(st *connState, id uint32, sinks []*core.CountSink, cancel <-chan struct{}, done <-chan struct{}, pwg *sync.WaitGroup) {
	defer pwg.Done()
	t := time.NewTicker(s.cfg.ProgressInterval)
	defer t.Stop()
	last := ^uint64(0)
	for {
		select {
		case <-done:
			return
		case <-cancel:
			return
		case <-t.C:
			var partial uint64
			for _, cs := range sinks {
				partial += cs.Count()
			}
			if partial == last {
				continue
			}
			last = partial
			// Write errors mean the client is gone; the dispatch loop will
			// notice and cancel the query.
			st.qc.WriteProgress(&comm.QueryProgress{ID: id, Partial: partial})
		}
	}
}
