// Package service implements mining-as-a-service: a resident query server
// over one Khuzdul cluster. The cluster stays up with partitions loaded and
// caches warm; concurrent clients connect over the framed TCP wire, submit
// pattern queries (named pattern, edge list, or a previously compiled
// plan), and receive streamed partial counts plus a terminal result per
// query.
//
// Five mechanisms keep a multi-tenant server honest:
//
//   - Admission control. A bounded window of concurrently executing
//     queries; submissions beyond it are rejected immediately with a
//     retryable status instead of queueing without bound.
//   - Worker budgets. Each admitted query runs with a per-socket thread
//     budget (by default the cluster's threads split across the window), so
//     one heavy 5-motif query cannot starve point lookups.
//   - Cancellation. An explicit CANCEL frame or the client's disconnect
//     closes the query's cancel channel, which aborts every engine at its
//     next range or batch boundary and abandons in-flight remote fetches
//     through the resilient layer — a canceled query releases its admission
//     slot promptly even mid-fetch.
//   - Deadlines. Each query carries an optional deadline (client-requested,
//     capped by Config.QueryDeadline); when it fires, the same cancel
//     channel closes and the query completes with QueryDeadlineExceeded.
//     The deadline bounds everything the query does, including crash
//     recovery rounds.
//   - Graceful drain. Drain stops accepting work (new submissions are
//     rejected with a retryable DRAINING status), lets in-flight queries
//     finish up to a timeout, then hard-cancels the stragglers. Every
//     query — even a hard-canceled one — receives a terminal result frame
//     before its connection is severed.
package service

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"khuzdul/internal/cluster"
	"khuzdul/internal/comm"
	"khuzdul/internal/core"
	"khuzdul/internal/metrics"
	"khuzdul/internal/plan"
)

// Config tunes the query server. The zero value listens on an ephemeral
// loopback port with a window of DefaultMaxConcurrent queries.
type Config struct {
	// Addr is the listen address (default "127.0.0.1:0"; the actual address
	// is available from Server.Addr).
	Addr string
	// MaxConcurrent is the admission window: queries executing at once
	// across all connections (default DefaultMaxConcurrent).
	MaxConcurrent int
	// WorkerBudget is the per-socket engine thread count each query runs
	// with (default: the cluster's ThreadsPerSocket divided across the
	// admission window, at least 1).
	WorkerBudget int
	// ProgressInterval is the period between streamed partial counts
	// (default DefaultProgressInterval; negative disables streaming).
	ProgressInterval time.Duration
	// IOTimeout bounds each frame write to a client (default
	// DefaultIOTimeout); a stalled client cannot pin a query goroutine.
	IOTimeout time.Duration
	// QueryDeadline caps every query's execution time. A submission's own
	// deadline is honored up to this cap; queries without one inherit it.
	// 0 means no server-side cap.
	QueryDeadline time.Duration
}

// Defaults for Config's zero fields.
const (
	DefaultMaxConcurrent    = 4
	DefaultProgressInterval = 25 * time.Millisecond
	DefaultIOTimeout        = 10 * time.Second
)

// Server is a running query service over one resident cluster.
type Server struct {
	cl  *cluster.Cluster
	cfg Config
	reg *registry
	met *metrics.Service
	ln  net.Listener
	// admit is the admission window: a token held per executing query.
	admit  chan struct{}
	budget int
	nslots int // NumNodes × Sockets, for progress-sink preallocation

	mu sync.Mutex
	// conns maps each live connection to its query state (nil until the
	// handshake completes); Drain's hard-cancel walks the states.
	conns    map[net.Conn]*connState
	draining bool

	// qwg counts in-flight queries (one ticket per admitted submission,
	// reserved under mu so Drain's wait cannot race a new admit).
	qwg sync.WaitGroup
	// drainKill is set when Drain gives up waiting and hard-cancels;
	// queries canceled after that report a DRAINING detail.
	drainKill atomic.Bool

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
	drainOnce sync.Once
	drainDone chan struct{}
	drainErr  error
}

// New starts a query server over cl. The cluster must outlive the server
// and must not have speculation enabled — speculation assumes it owns the
// whole cluster per run, while the service schedules queries itself.
func New(cl *cluster.Cluster, cfg Config) (*Server, error) {
	ccfg := cl.Config()
	if ccfg.Speculate {
		return nil, errors.New("service: clusters with Speculate are not servable; the service schedules queries itself")
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = DefaultMaxConcurrent
	}
	if cfg.ProgressInterval == 0 {
		cfg.ProgressInterval = DefaultProgressInterval
	}
	if cfg.IOTimeout == 0 {
		cfg.IOTimeout = DefaultIOTimeout
	}
	budget := cfg.WorkerBudget
	if budget <= 0 {
		budget = ccfg.ThreadsPerSocket / cfg.MaxConcurrent
		if budget < 1 {
			budget = 1
		}
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("service: listen: %w", err)
	}
	s := &Server{
		cl:        cl,
		cfg:       cfg,
		reg:       newRegistry(cl.Graph()),
		met:       &metrics.Service{},
		ln:        ln,
		admit:     make(chan struct{}, cfg.MaxConcurrent),
		budget:    budget,
		nslots:    ccfg.NumNodes * ccfg.Sockets,
		conns:     make(map[net.Conn]*connState),
		closed:    make(chan struct{}),
		drainDone: make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's actual listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Metrics returns the live service counters.
func (s *Server) Metrics() *metrics.Service { return s.met }

// SummaryLine renders the service counters in the CLI summary style.
func (s *Server) SummaryLine() string { return s.met.SummaryLine() }

// Close shuts the server down immediately: it is Drain with a zero
// timeout, so in-flight queries are hard-canceled right away — but each
// still receives its terminal result frame (QueryCanceled with a DRAINING
// detail) before its connection is severed, and all server goroutines are
// joined before Close returns.
func (s *Server) Close() error { return s.Drain(0) }

// Drain shuts the server down gracefully: stop accepting connections,
// reject new submissions with a retryable DRAINING status, wait up to
// timeout for in-flight queries to finish, then hard-cancel whatever is
// left. Hard-canceled queries still get a terminal result frame before
// their connections are severed. Drain is idempotent — concurrent and
// repeated calls share one shutdown and all block until it completes; the
// first call's timeout wins.
func (s *Server) Drain(timeout time.Duration) error {
	s.drainOnce.Do(func() {
		s.drainErr = s.drain(timeout)
		close(s.drainDone)
	})
	<-s.drainDone
	return s.drainErr
}

func (s *Server) drain(timeout time.Duration) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	err := s.ln.Close()

	// Let in-flight queries finish on their own, up to the timeout. The
	// dispatch loops stay alive during the wait so clients can still cancel
	// their queries and probe health.
	finished := make(chan struct{})
	go func() {
		s.qwg.Wait()
		close(finished)
	}()
	graceful := timeout > 0
	if graceful {
		t := time.NewTimer(timeout)
		select {
		case <-finished:
		case <-t.C:
			graceful = false
		}
		t.Stop()
	}
	if !graceful {
		// Hard-cancel the stragglers. Their runQuery goroutines observe the
		// cancel at the next range boundary, write the terminal result frame,
		// and only then release their qwg ticket — so waiting on qwg below
		// guarantees every client saw a final status before we sever.
		s.drainKill.Store(true)
		s.mu.Lock()
		for _, st := range s.conns {
			if st != nil {
				st.cancelAll()
			}
		}
		s.mu.Unlock()
		<-finished
	}

	s.closeOnce.Do(func() { close(s.closed) })
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// acceptLoop admits client connections until the listener closes.
//
//khuzdulvet:longrun
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			// Listener closed (Close) or a fatal accept error; either way
			// the server stops admitting.
			return
		}
		s.mu.Lock()
		if s.draining || chanClosed(s.closed) {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = nil
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(c)
	}
}

// chanClosed reports whether the cancel/close signal has fired.
func chanClosed(closed <-chan struct{}) bool {
	select {
	case <-closed:
		return true
	default:
		return false
	}
}

// connState tracks one client connection's in-flight queries: the cancel
// channel per active query ID plus the join group for its query goroutines.
type connState struct {
	qc *comm.QueryConn
	wg sync.WaitGroup

	mu     sync.Mutex
	active map[uint32]chan struct{}
}

// begin registers a query and returns its cancel channel, or false when the
// ID is already in flight on this connection.
func (st *connState) begin(id uint32) (chan struct{}, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, dup := st.active[id]; dup {
		return nil, false
	}
	ch := make(chan struct{})
	st.active[id] = ch
	return ch, true
}

// cancelQuery closes one query's cancel channel (idempotent: an already
// finished or canceled ID is a no-op).
func (st *connState) cancelQuery(id uint32) bool {
	st.mu.Lock()
	ch, ok := st.active[id]
	delete(st.active, id)
	st.mu.Unlock()
	if ok {
		close(ch)
	}
	return ok
}

// finish retires a completed query's registration.
func (st *connState) finish(id uint32) {
	st.mu.Lock()
	delete(st.active, id)
	st.mu.Unlock()
}

// cancelAll aborts every in-flight query (client disconnect, server close).
func (st *connState) cancelAll() {
	st.mu.Lock()
	for id, ch := range st.active {
		close(ch)
		delete(st.active, id)
	}
	st.mu.Unlock()
}

// serveConn runs one client connection: handshake, then the dispatch loop
// reading submissions and cancels until the client disconnects. Disconnect
// — deliberate or not — cancels every query the connection still has in
// flight: results would have nowhere to go.
//
//khuzdulvet:longrun
func (s *Server) serveConn(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
	defer c.Close()
	qc, err := comm.AcceptQuery(c, s.cfg.IOTimeout)
	if err != nil {
		return
	}
	st := &connState{qc: qc, active: make(map[uint32]chan struct{})}
	s.mu.Lock()
	if _, live := s.conns[c]; live {
		s.conns[c] = st
	}
	s.mu.Unlock()
dispatch:
	for {
		if chanClosed(s.closed) {
			break
		}
		msg, err := qc.ReadMsg()
		if err != nil {
			break
		}
		switch m := msg.(type) {
		case *comm.QuerySubmit:
			s.submit(st, m)
		case *comm.QueryCancel:
			st.cancelQuery(m.ID)
		case *comm.QueryHealthProbe:
			h := s.Health()
			qc.WriteHealth(h.wire())
		default:
			// Clients must not send server-side frames; the connection's
			// framing discipline is broken, so drop it.
			break dispatch
		}
	}
	st.cancelAll()
	st.wg.Wait()
}

// submit applies admission control to one submission and, if admitted,
// launches its query goroutine. Called from the connection's dispatch
// goroutine, so per-connection submission order is preserved.
func (s *Server) submit(st *connState, sub *comm.QuerySubmit) {
	s.met.QueriesSubmitted.Add(1)
	// Reserve the drain ticket under mu: once Drain sets draining it can
	// wait on qwg knowing no further tickets will appear.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.met.QueriesRejected.Add(1)
		st.qc.WriteResult(&comm.QueryResult{
			ID:     sub.ID,
			Status: comm.QueryRejected,
			Detail: "DRAINING: server is shutting down; retry on another replica",
		})
		return
	}
	s.qwg.Add(1)
	s.mu.Unlock()
	launched := false
	defer func() {
		if !launched {
			s.qwg.Done()
		}
	}()
	select {
	case s.admit <- struct{}{}:
	default:
		s.met.QueriesRejected.Add(1)
		st.qc.WriteResult(&comm.QueryResult{
			ID:     sub.ID,
			Status: comm.QueryRejected,
			Detail: fmt.Sprintf("admission window full (%d queries executing); retry after a result returns", s.cfg.MaxConcurrent),
		})
		return
	}
	cancel, ok := st.begin(sub.ID)
	if !ok {
		<-s.admit
		s.met.QueriesFailed.Add(1)
		st.qc.WriteResult(&comm.QueryResult{
			ID:     sub.ID,
			Status: comm.QueryFailed,
			Detail: fmt.Sprintf("query id %d is already in flight on this connection", sub.ID),
		})
		return
	}
	launched = true
	st.wg.Add(1)
	sub2 := *sub
	go s.runQuery(st, &sub2, cancel)
}

// deadlineFor resolves one submission's effective deadline: the client's
// request, capped by the server-side Config.QueryDeadline (which also
// applies to queries that asked for none). 0 means unbounded.
func (s *Server) deadlineFor(sub *comm.QuerySubmit) time.Duration {
	d := sub.Deadline
	if s.cfg.QueryDeadline > 0 && (d == 0 || d > s.cfg.QueryDeadline) {
		d = s.cfg.QueryDeadline
	}
	return d
}

// runQuery executes one admitted query end to end: resolve the plan, arm
// the deadline, stream progress while the cluster runs it under this
// query's cancel channel and worker budget, and deliver the terminal
// result. The result frame is always written before the qwg ticket is
// released, so Drain can guarantee clients a final status.
func (s *Server) runQuery(st *connState, sub *comm.QuerySubmit, cancel chan struct{}) {
	defer s.qwg.Done()
	defer st.wg.Done()
	defer func() { <-s.admit }()
	defer st.finish(sub.ID)
	cur := s.met.ActiveQueries.Add(1)
	if cur > 0 {
		s.met.RecordActivePeak(uint64(cur))
	}
	defer s.met.ActiveQueries.Add(-1)

	// The deadline covers the query's whole server-side life — plan
	// resolution, execution, and any crash-recovery rounds it triggers.
	var deadlined atomic.Bool
	deadline := s.deadlineFor(sub)
	if deadline > 0 {
		tm := time.AfterFunc(deadline, func() {
			deadlined.Store(true)
			st.cancelQuery(sub.ID)
		})
		defer tm.Stop()
	}

	// canceled classifies a cancellation after the fact: the deadline
	// fired, drain hard-canceled us, or the client asked.
	canceled := func(planID uint32, elapsed time.Duration) {
		switch {
		case deadlined.Load():
			s.met.QueriesDeadlineExceeded.Add(1)
			st.qc.WriteResult(&comm.QueryResult{
				ID: sub.ID, Status: comm.QueryDeadlineExceeded, PlanID: planID,
				Elapsed: elapsed, Detail: fmt.Sprintf("deadline %v exceeded", deadline),
			})
		case s.drainKill.Load():
			s.met.QueriesCanceled.Add(1)
			st.qc.WriteResult(&comm.QueryResult{
				ID: sub.ID, Status: comm.QueryCanceled, PlanID: planID,
				Elapsed: elapsed, Detail: "DRAINING: hard-canceled at drain timeout",
			})
		default:
			s.met.QueriesCanceled.Add(1)
			st.qc.WriteResult(&comm.QueryResult{
				ID: sub.ID, Status: comm.QueryCanceled, PlanID: planID, Elapsed: elapsed,
			})
		}
	}

	planID, pl, err := s.reg.resolve(sub)
	if err != nil {
		s.met.QueriesFailed.Add(1)
		st.qc.WriteResult(&comm.QueryResult{ID: sub.ID, Status: comm.QueryFailed, Detail: err.Error()})
		return
	}
	if chanClosed(cancel) {
		canceled(planID, 0)
		return
	}

	start := time.Now()
	res, runErr := s.runPlan(st, sub.ID, pl, cancel)
	elapsed := time.Since(start)
	s.met.AddQueryDuration(elapsed)
	switch {
	case runErr == nil:
		s.met.QueriesOK.Add(1)
		st.qc.WriteResult(&comm.QueryResult{
			ID: sub.ID, Status: comm.QueryOK, PlanID: planID,
			Count: res.Count, Elapsed: elapsed,
		})
	case errors.Is(runErr, cluster.ErrRunCanceled):
		canceled(planID, elapsed)
	default:
		s.met.QueriesFailed.Add(1)
		st.qc.WriteResult(&comm.QueryResult{
			ID: sub.ID, Status: comm.QueryFailed, PlanID: planID,
			Elapsed: elapsed, Detail: runErr.Error(),
		})
	}
}

// runPlan executes pl on the resident cluster with this query's budget and
// cancel channel, streaming partial counts while it runs. Sinks are
// preallocated per (node, socket) slot so the progress goroutine can read
// their atomic counters concurrently with the run.
func (s *Server) runPlan(st *connState, id uint32, pl *plan.Plan, cancel <-chan struct{}) (cluster.Result, error) {
	sinks := make([]*core.CountSink, s.nslots)
	for i := range sinks {
		sinks[i] = &core.CountSink{}
	}
	sockets := s.cl.Config().Sockets
	factory := func(node, socket int) core.Sink { return sinks[node*sockets+socket] }

	done := make(chan struct{})
	var pwg sync.WaitGroup
	if s.cfg.ProgressInterval > 0 {
		pwg.Add(1)
		go s.streamProgress(st, id, sinks, cancel, done, &pwg)
	}
	res, err := s.cl.RunWith(pl, factory, cluster.RunOpts{
		Cancel:           cancel,
		ThreadsPerSocket: s.budget,
		KeepMetrics:      true,
	})
	close(done)
	pwg.Wait()
	return res, err
}

// Health is a point-in-time snapshot of the server's fitness to serve:
// whether it is draining, how loaded its admission window is, lifetime
// counters, and which cluster nodes are currently suspected dead.
type Health struct {
	// Draining reports an in-progress graceful shutdown; new submissions
	// are being rejected with a retryable DRAINING status.
	Draining bool
	// ActiveQueries is the number of queries executing right now.
	ActiveQueries int
	// Window is the admission window (Config.MaxConcurrent).
	Window int
	// Submitted and DeadlineExceeded are lifetime counters.
	Submitted        uint64
	DeadlineExceeded uint64
	// SuspectNodes lists cluster nodes currently suspected dead (breaker
	// declared or crash-injected), ascending. Queries keep completing —
	// the cluster re-partitions dead shards onto survivors — but counts
	// here persisting across probes mean degraded capacity.
	SuspectNodes []int
}

// Health snapshots the server's current fitness.
func (s *Server) Health() Health {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	active := s.met.ActiveQueries.Load()
	if active < 0 {
		active = 0
	}
	return Health{
		Draining:         draining,
		ActiveQueries:    int(active),
		Window:           s.cfg.MaxConcurrent,
		Submitted:        s.met.QueriesSubmitted.Load(),
		DeadlineExceeded: s.met.QueriesDeadlineExceeded.Load(),
		SuspectNodes:     s.cl.DeadNodes(),
	}
}

// wire renders the snapshot as its QUERY_HEALTH payload.
func (h Health) wire() *comm.QueryHealth {
	suspects := make([]uint32, len(h.SuspectNodes))
	for i, n := range h.SuspectNodes {
		suspects[i] = uint32(n)
	}
	return &comm.QueryHealth{
		Draining:         h.Draining,
		ActiveQueries:    uint32(h.ActiveQueries),
		Window:           uint32(h.Window),
		Submitted:        h.Submitted,
		DeadlineExceeded: h.DeadlineExceeded,
		Suspects:         suspects,
	}
}

// fromWire converts a received QUERY_HEALTH payload back to a snapshot.
func healthFromWire(w *comm.QueryHealth) Health {
	suspects := make([]int, len(w.Suspects))
	for i, n := range w.Suspects {
		suspects[i] = int(n)
	}
	return Health{
		Draining:         w.Draining,
		ActiveQueries:    int(w.ActiveQueries),
		Window:           int(w.Window),
		Submitted:        w.Submitted,
		DeadlineExceeded: w.DeadlineExceeded,
		SuspectNodes:     suspects,
	}
}

// streamProgress periodically sums the query's sink counters and streams
// the partial count to the client, until the run finishes or the query is
// canceled.
func (s *Server) streamProgress(st *connState, id uint32, sinks []*core.CountSink, cancel <-chan struct{}, done <-chan struct{}, pwg *sync.WaitGroup) {
	defer pwg.Done()
	t := time.NewTicker(s.cfg.ProgressInterval)
	defer t.Stop()
	last := ^uint64(0)
	for {
		select {
		case <-done:
			return
		case <-cancel:
			return
		case <-t.C:
			var partial uint64
			for _, cs := range sinks {
				partial += cs.Count()
			}
			if partial == last {
				continue
			}
			last = partial
			// Write errors mean the client is gone; the dispatch loop will
			// notice and cancel the query.
			st.qc.WriteProgress(&comm.QueryProgress{ID: id, Partial: partial})
		}
	}
}
