package service

import (
	"errors"
	"sync"
	"testing"
	"time"

	"khuzdul/internal/apps"
	"khuzdul/internal/cluster"
	"khuzdul/internal/comm"
	"khuzdul/internal/fault"
	"khuzdul/internal/graph"
	"khuzdul/internal/leakcheck"
	"khuzdul/internal/pattern"
)

// testGraph is the shared input for service tests: big enough that remote
// fetches happen, small enough for CI.
func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return graph.RMATDefault(400, 1600, 7)
}

// fastClusterConfig is a healthy 3-node TCP cluster with shared caches —
// the resident-server shape.
func fastClusterConfig() cluster.Config {
	return cluster.Config{
		NumNodes:         3,
		ThreadsPerSocket: 2,
		Transport:        cluster.TransportTCP,
		CacheFraction:    0.1,
		SharedCache:      true,
	}
}

// slowClusterConfig injects deterministic per-fetch latency and shrinks the
// chunk size so every query crosses many fetch batches — long enough to
// observe admission and cancellation mid-run, bounded enough for CI. The
// generous FetchTimeout keeps the injected latency from tripping the
// resilience layer's deadlines.
func slowClusterConfig(t *testing.T, maxLatency string) cluster.Config {
	t.Helper()
	prof, err := fault.ParseProfile("seed=11,latency=" + maxLatency)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastClusterConfig()
	cfg.ChunkSize = 8
	cfg.Fault = prof
	cfg.FetchTimeout = 10 * time.Second
	cfg.FetchRetries = 1
	return cfg
}

func newTestServer(t *testing.T, ccfg cluster.Config, scfg Config) (*cluster.Cluster, *Server) {
	t.Helper()
	cl, err := cluster.New(testGraph(t), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(cl, scfg)
	if err != nil {
		cl.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		cl.Close()
	})
	return cl, srv
}

// oneShotCount runs spec the pre-service way: a dedicated Cluster.Count on
// a fresh cluster, the baseline the service's answers must match exactly.
func oneShotCount(t *testing.T, spec Spec) uint64 {
	t.Helper()
	g := testGraph(t)
	cl, err := cluster.New(g, cluster.Config{NumNodes: 3, ThreadsPerSocket: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	pat, err := pattern.Parse(spec.Pattern)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := apps.Compile(spec.System, pat, g, apps.CompileOptions{Induced: spec.Induced})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Count(pl)
	if err != nil {
		t.Fatal(err)
	}
	return res.Count
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", d, what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestConcurrentQueriesMatchOneShot is the tentpole's correctness check: a
// resident server answers 8 concurrent pattern queries over the TCP mux
// fabric, and every count is bit-identical to a one-shot Cluster.Count of
// the same pattern.
func TestConcurrentQueriesMatchOneShot(t *testing.T) {
	leakcheck.Check(t)
	specs := []Spec{
		{Pattern: "triangle"},
		{Pattern: "K4"},
		{Pattern: "3:0-1,1-2"},
		{Pattern: "4:0-1,1-2,2-3,3-0"},
		{Pattern: "triangle", System: apps.KAutomine},
		{Pattern: "house", Induced: true},
		{Pattern: "tailed-triangle"},
		{Pattern: "K4", Induced: true},
	}
	want := make([]uint64, len(specs))
	for i, s := range specs {
		want[i] = oneShotCount(t, s)
	}

	_, srv := newTestServer(t, fastClusterConfig(), Config{MaxConcurrent: len(specs)})
	cli, err := Dial(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	got := make([]uint64, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i, s := range specs {
		wg.Add(1)
		go func(i int, s Spec) {
			defer wg.Done()
			out, err := cli.Run(s)
			got[i], errs[i] = out.Count, err
		}(i, s)
	}
	wg.Wait()
	for i := range specs {
		if errs[i] != nil {
			t.Fatalf("query %q: %v", specs[i].Pattern, errs[i])
		}
		if got[i] != want[i] {
			t.Errorf("query %q: served count %d, one-shot count %d", specs[i].Pattern, got[i], want[i])
		}
	}
	m := srv.Metrics()
	if n := m.QueriesOK.Load(); n != uint64(len(specs)) {
		t.Errorf("QueriesOK = %d, want %d", n, len(specs))
	}
	if m.ActiveQueryPeak.Load() == 0 {
		t.Error("ActiveQueryPeak stayed 0 despite concurrent queries")
	}
}

// TestOverlappingQueriesTwoClients checks interleaving across separate
// connections: two overlapping queries return the same counts as serial
// runs.
func TestOverlappingQueriesTwoClients(t *testing.T) {
	leakcheck.Check(t)
	wantTri := oneShotCount(t, Spec{Pattern: "triangle"})
	wantK4 := oneShotCount(t, Spec{Pattern: "K4"})

	_, srv := newTestServer(t, fastClusterConfig(), Config{MaxConcurrent: 2})
	c1, err := Dial(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	q1, err := c1.Submit(Spec{Pattern: "triangle"})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := c2.Submit(Spec{Pattern: "K4"})
	if err != nil {
		t.Fatal(err)
	}
	out1, err1 := q1.Result()
	out2, err2 := q2.Result()
	if err1 != nil || err2 != nil {
		t.Fatalf("results: %v, %v", err1, err2)
	}
	if out1.Count != wantTri || out2.Count != wantK4 {
		t.Fatalf("counts (%d, %d), want (%d, %d)", out1.Count, out2.Count, wantTri, wantK4)
	}
}

// TestAdmissionRejection: with a window of one, a second submission is
// bounced with the retryable rejection status while the first still runs —
// and succeeds when retried after the window frees.
func TestAdmissionRejection(t *testing.T) {
	leakcheck.Check(t)
	_, srv := newTestServer(t, slowClusterConfig(t, "10ms"), Config{
		MaxConcurrent: 1,
		WorkerBudget:  1,
	})
	cli, err := Dial(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	q1, err := cli.Submit(Spec{Pattern: "K4"})
	if err != nil {
		t.Fatal(err)
	}
	m := srv.Metrics()
	waitFor(t, 10*time.Second, "query 1 to start executing", func() bool {
		return m.ActiveQueries.Load() == 1
	})

	out, err := cli.Run(Spec{Pattern: "triangle"})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("second query: err %v (outcome %+v), want ErrRejected", err, out)
	}
	if out.Status != comm.QueryRejected {
		t.Fatalf("second query status %d, want QueryRejected", out.Status)
	}
	if m.QueriesRejected.Load() != 1 {
		t.Fatalf("QueriesRejected = %d, want 1", m.QueriesRejected.Load())
	}

	// Abort the hog and verify a retry is admitted once the window frees.
	if err := q1.Cancel(); err != nil {
		t.Fatal(err)
	}
	if _, err := q1.Result(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled query: %v, want ErrCanceled", err)
	}
	waitFor(t, 10*time.Second, "the admission window to free", func() bool {
		return m.ActiveQueries.Load() == 0
	})
	var retried Outcome
	waitFor(t, 10*time.Second, "the retried query to be admitted", func() bool {
		out, err := cli.Run(Spec{Pattern: "triangle"})
		if errors.Is(err, ErrRejected) {
			return false
		}
		if err != nil {
			t.Fatal(err)
		}
		retried = out
		return true
	})
	if want := oneShotCount(t, Spec{Pattern: "triangle"}); retried.Count != want {
		t.Fatalf("retried count %d, want %d", retried.Count, want)
	}
}

// TestDisconnectCancelsMidRange is the cancellation-plumbing proof: a
// client disconnect mid-run must abort the query — mid-range, abandoning
// in-flight remote fetches — long before the run could finish on its own.
// Against a build without the cancel wiring (RunOpts.Cancel ignored), the
// query keeps executing its multi-second fetch schedule and completes as
// QueriesOK, so the canceled-counter wait below times out and the test
// fails.
func TestDisconnectCancelsMidRange(t *testing.T) {
	leakcheck.Check(t)
	// ~25ms injected latency per fetch across hundreds of small-chunk fetch
	// batches puts the uncanceled run's duration far beyond the 5s bound the
	// canceled query must meet.
	_, srv := newTestServer(t, slowClusterConfig(t, "25ms"), Config{
		MaxConcurrent:    1,
		WorkerBudget:     1,
		ProgressInterval: 5 * time.Millisecond,
	})
	cli, err := Dial(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}

	q, err := cli.Submit(Spec{Pattern: "K4"})
	if err != nil {
		t.Fatal(err)
	}
	m := srv.Metrics()
	waitFor(t, 10*time.Second, "the query to start executing", func() bool {
		return m.ActiveQueries.Load() == 1
	})
	// Wait until the run is demonstrably mid-range: a streamed partial count
	// proves engines are extending embeddings, not warming up.
	select {
	case <-q.Progress():
	case <-time.After(10 * time.Second):
		t.Fatal("no progress streamed within 10s")
	}

	disconnect := time.Now()
	cli.Close()
	waitFor(t, 5*time.Second, "the disconnected query to be canceled", func() bool {
		return m.QueriesCanceled.Load() == 1 && m.ActiveQueries.Load() == 0
	})
	t.Logf("cancel-to-idle latency: %v", time.Since(disconnect))
	if n := m.QueriesOK.Load(); n != 0 {
		t.Fatalf("QueriesOK = %d after disconnect, want 0 (run must not complete)", n)
	}
}

// TestPlanRefReuse: the plan ID returned with a result re-submits the
// compiled plan and returns the identical count; an unknown plan ID fails
// cleanly.
func TestPlanRefReuse(t *testing.T) {
	leakcheck.Check(t)
	_, srv := newTestServer(t, fastClusterConfig(), Config{})
	cli, err := Dial(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	first, err := cli.Run(Spec{Pattern: "triangle"})
	if err != nil {
		t.Fatal(err)
	}
	if first.PlanID == 0 {
		t.Fatal("first result carries no plan id")
	}
	again, err := cli.Run(Spec{PlanID: first.PlanID})
	if err != nil {
		t.Fatal(err)
	}
	if again.Count != first.Count {
		t.Fatalf("plan-ref count %d, want %d", again.Count, first.Count)
	}
	if again.PlanID != first.PlanID {
		t.Fatalf("plan-ref echoed plan %d, want %d", again.PlanID, first.PlanID)
	}
	if _, err := cli.Run(Spec{PlanID: 99999}); !errors.Is(err, ErrQueryFailed) {
		t.Fatalf("unknown plan id: %v, want ErrQueryFailed", err)
	}
}

// TestBadQueryFails: an unparseable pattern fails the query without
// disturbing the server.
func TestBadQueryFails(t *testing.T) {
	leakcheck.Check(t)
	_, srv := newTestServer(t, fastClusterConfig(), Config{})
	cli, err := Dial(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Run(Spec{Pattern: "no-such-pattern-%%"}); !errors.Is(err, ErrQueryFailed) {
		t.Fatalf("bad pattern: %v, want ErrQueryFailed", err)
	}
	// The server still answers.
	out, err := cli.Run(Spec{Pattern: "triangle"})
	if err != nil || out.Status != comm.QueryOK {
		t.Fatalf("follow-up query: %+v, %v", out, err)
	}
}

// TestServerCloseCancelsClients: closing the server mid-query severs the
// connection and strands no goroutines (leakcheck) — pending client calls
// return, not hang.
func TestServerCloseCancelsClients(t *testing.T) {
	leakcheck.Check(t)
	cl, err := cluster.New(testGraph(t), slowClusterConfig(t, "10ms"))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	srv, err := New(cl, Config{MaxConcurrent: 1, WorkerBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(srv.Addr(), 0)
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	defer cli.Close()
	q, err := cli.Submit(Spec{Pattern: "K4"})
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	m := srv.Metrics()
	waitFor(t, 10*time.Second, "the query to start executing", func() bool {
		return m.ActiveQueries.Load() == 1
	})
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Result(); err == nil {
		t.Fatal("query resolved cleanly across a server shutdown")
	}
}

// TestSpeculatingClusterRefused: the service owns scheduling; a cluster
// with speculation enabled is a configuration error.
func TestSpeculatingClusterRefused(t *testing.T) {
	leakcheck.Check(t)
	cfg := fastClusterConfig()
	cfg.Speculate = true
	cl, err := cluster.New(testGraph(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := New(cl, Config{}); err == nil {
		t.Fatal("New accepted a speculating cluster")
	}
}
