// Package setops provides the sorted-set kernels at the heart of
// pattern-aware enumeration: intersections, subtractions, and bounded
// variants of both. Every adjacency list in this repository is a strictly
// ascending []graph.VertexID, and every engine — the Khuzdul core, the
// single-machine executors, and all baselines — funnels its per-level
// candidate generation through these functions.
//
// All functions append to dst and return the extended slice, so callers can
// reuse buffers across calls. Inputs must be strictly ascending; outputs are
// strictly ascending.
//
//khuzdulvet:hotpath every kernel here sits inside the per-embedding loop
package setops

import (
	"khuzdul/internal/graph"
)

// Intersect appends a ∩ b to dst.
// It switches to galloping search when the lists' sizes are lopsided, which
// matters on skewed graphs where a hub list meets a short list.
//
// dst may alias a's or b's backing array when appended at position 0
// (dst = Intersect(x[:0], x, y)): both the merge and the gallop path only
// write at an index no greater than the read cursor of either input, so the
// in-place running intersection of IntersectMany is safe.
func Intersect(dst, a, b []graph.VertexID) []graph.VertexID {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return dst
	}
	if len(b) >= 32*len(a) {
		return gallopIntersect(dst, a, b)
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// gallopIntersect intersects a short list a with a much longer list b by
// exponential + binary search in b.
func gallopIntersect(dst, a, b []graph.VertexID) []graph.VertexID {
	lo := 0
	for _, x := range a {
		// Exponential probe from lo.
		step := 1
		hi := lo
		for hi < len(b) && b[hi] < x {
			lo = hi + 1
			hi += step
			step <<= 1
		}
		if hi > len(b) {
			hi = len(b)
		}
		// Binary search in (lo-1, hi].
		l, r := lo, hi
		for l < r {
			m := int(uint(l+r) >> 1)
			if b[m] < x {
				l = m + 1
			} else {
				r = m
			}
		}
		lo = l
		if lo < len(b) && b[lo] == x {
			dst = append(dst, x)
			lo++
		}
		if lo >= len(b) {
			break
		}
	}
	return dst
}

// IntersectBounded appends {x ∈ a ∩ b : lo < x < hi} to dst. Bounds encode
// symmetry-breaking restrictions; pass 0 for no lower bound and
// ^graph.VertexID(0) for no upper bound. Bounds are exclusive.
func IntersectBounded(dst, a, b []graph.VertexID, lo, hi graph.VertexID) []graph.VertexID {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			x := a[i]
			if x >= hi {
				return dst
			}
			if x > lo {
				dst = append(dst, x)
			}
			i++
			j++
		}
	}
	return dst
}

// Subtract appends a \ b to dst.
func Subtract(dst, a, b []graph.VertexID) []graph.VertexID {
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			continue
		}
		dst = append(dst, x)
	}
	return dst
}

// Filter appends {x ∈ a : lo ≤ x < hi, x ∉ excl} to dst. excl is a small
// unsorted slice (the previously matched vertices); the lower bound is
// inclusive so that 0 means "unbounded", the upper bound exclusive.
func Filter(dst, a []graph.VertexID, lo, hi graph.VertexID, excl []graph.VertexID) []graph.VertexID {
	for _, x := range a {
		if x >= hi {
			break
		}
		if x < lo {
			continue
		}
		if contains(excl, x) {
			continue
		}
		dst = append(dst, x)
	}
	return dst
}

// Contains reports whether sorted list a contains x, via binary search.
func Contains(a []graph.VertexID, x graph.VertexID) bool {
	l, r := 0, len(a)
	for l < r {
		m := int(uint(l+r) >> 1)
		if a[m] < x {
			l = m + 1
		} else {
			r = m
		}
	}
	return l < len(a) && a[l] == x
}

// contains is linear scan over a tiny unsorted slice.
func contains(s []graph.VertexID, x graph.VertexID) bool {
	for _, y := range s {
		if y == x {
			return true
		}
	}
	return false
}

// IntersectMany appends the intersection of all lists to dst. lists must be
// non-empty; for a single list it appends a copy. The running intersection
// uses scratch storage provided by the caller (may be nil).
func IntersectMany(dst []graph.VertexID, lists [][]graph.VertexID, scratch []graph.VertexID) []graph.VertexID {
	switch len(lists) {
	case 0:
		return dst
	case 1:
		return append(dst, lists[0]...)
	case 2:
		return Intersect(dst, lists[0], lists[1])
	}
	// The running intersection shrinks monotonically, so it is narrowed in
	// place: Intersect never writes past its read cursors (see its doc), and
	// reusing scratch's backing array keeps the whole reduction allocation-free
	// once scratch has warmed up.
	cur := Intersect(scratch[:0], lists[0], lists[1])
	for i := 2; i < len(lists)-1; i++ {
		cur = Intersect(cur[:0], cur, lists[i])
	}
	return Intersect(dst, cur, lists[len(lists)-1])
}

// CountIntersect returns |a ∩ b| without materializing the result.
func CountIntersect(a, b []graph.VertexID) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	n := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// CountGreater returns |{x ∈ a : x > lo}|.
func CountGreater(a []graph.VertexID, lo graph.VertexID) int {
	l, r := 0, len(a)
	for l < r {
		m := int(uint(l+r) >> 1)
		if a[m] <= lo {
			l = m + 1
		} else {
			r = m
		}
	}
	return len(a) - l
}
