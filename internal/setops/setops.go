// Package setops provides the sorted-set kernels at the heart of
// pattern-aware enumeration: intersections, subtractions, and bounded
// variants of both. Every adjacency list in this repository is a strictly
// ascending []graph.VertexID, and every engine — the Khuzdul core, the
// single-machine executors, and all baselines — funnels its per-level
// candidate generation through these functions.
//
// All functions append to dst and return the extended slice, so callers can
// reuse buffers across calls. Inputs must be strictly ascending; outputs are
// strictly ascending.
//
//khuzdulvet:hotpath every kernel here sits inside the per-embedding loop
package setops

import (
	"khuzdul/internal/graph"
)

// Kernel names one concrete intersection implementation. The dispatcher and
// the plan runtime pick a kernel per call; per-kernel invocation counters
// flow into metrics so the selection policy is observable.
type Kernel uint8

const (
	// KernelMerge is the linear two-cursor merge (balanced list sizes).
	KernelMerge Kernel = iota
	// KernelGallop is exponential + binary search of a short list into a
	// much longer one (lopsided sizes).
	KernelGallop
	// KernelBitmap probes a dense per-hub bitset, amortizing one O(|hub|)
	// build across every embedding that touches the same hub vertex.
	KernelBitmap
	// KernelPivot is the k-way intersection driven by the shortest list.
	KernelPivot
	// NumKernels sizes per-kernel counter arrays.
	NumKernels
)

func (k Kernel) String() string {
	switch k {
	case KernelMerge:
		return "merge"
	case KernelGallop:
		return "gallop"
	case KernelBitmap:
		return "bitmap"
	case KernelPivot:
		return "pivot"
	default:
		return "kernel(?)"
	}
}

// NoVertex marks a list with no owning vertex (a scratch intermediate, not
// an adjacency list). The dispatcher never hub-caches such a list.
const NoVertex = ^graph.VertexID(0)

// gallopRatio is the size ratio at which Intersect escalates from the linear
// merge to galloping search.
const gallopRatio = 32

// Intersect appends a ∩ b to dst.
// It switches to galloping search when the lists' sizes are lopsided, which
// matters on skewed graphs where a hub list meets a short list.
//
// dst may alias a's or b's backing array when appended at position 0
// (dst = Intersect(x[:0], x, y)): both the merge and the gallop path only
// write at an index no greater than the read cursor of either input, so the
// in-place running intersection of IntersectMany is safe.
func Intersect(dst, a, b []graph.VertexID) []graph.VertexID {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return dst
	}
	if len(b) >= gallopRatio*len(a) {
		return gallopIntersect(dst, a, b)
	}
	return IntersectMerge(dst, a, b)
}

// IntersectMerge appends a ∩ b to dst with the linear two-cursor merge,
// unconditionally. It is the right kernel when the lists are of comparable
// size; Intersect and the Dispatcher call it after ruling out skew.
func IntersectMerge(dst, a, b []graph.VertexID) []graph.VertexID {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// IntersectGallop appends a ∩ b to dst, unconditionally driving the shorter
// list through exponential + binary search in the longer one. Prefer
// Intersect, which escalates to this kernel only past gallopRatio.
func IntersectGallop(dst, a, b []graph.VertexID) []graph.VertexID {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return dst
	}
	return gallopIntersect(dst, a, b)
}

// gallopTo returns the first index j ≥ lo with b[j] ≥ x, by exponential
// probe from lo followed by binary search — O(log d) where d is the distance
// advanced, the property every galloping kernel here leans on.
func gallopTo(b []graph.VertexID, lo int, x graph.VertexID) int {
	step := 1
	hi := lo
	for hi < len(b) && b[hi] < x {
		lo = hi + 1
		hi += step
		step <<= 1
	}
	if hi > len(b) {
		hi = len(b)
	}
	l, r := lo, hi
	for l < r {
		m := int(uint(l+r) >> 1)
		if b[m] < x {
			l = m + 1
		} else {
			r = m
		}
	}
	return l
}

// gallopIntersect intersects a short list a with a much longer list b by
// exponential + binary search in b.
func gallopIntersect(dst, a, b []graph.VertexID) []graph.VertexID {
	lo := 0
	for _, x := range a {
		lo = gallopTo(b, lo, x)
		if lo >= len(b) {
			break
		}
		if b[lo] == x {
			dst = append(dst, x)
			lo++
			if lo >= len(b) {
				break
			}
		}
	}
	return dst
}

// IntersectBounded appends {x ∈ a ∩ b : lo < x < hi} to dst. Bounds encode
// symmetry-breaking restrictions; pass 0 for no lower bound and
// ^graph.VertexID(0) for no upper bound. Bounds are exclusive.
//
// The shorter list is clipped to (lo, hi) up front, then the intersection
// escalates to galloping search exactly like Intersect when the remaining
// sizes are lopsided — a bounded scan against a hub list no longer pays the
// full long-list walk.
func IntersectBounded(dst, a, b []graph.VertexID, lo, hi graph.VertexID) []graph.VertexID {
	if len(a) > len(b) {
		a, b = b, a
	}
	// lo = all-ones admits nothing above it; lo+1 ≥ hi means the open
	// interval (lo, hi) is empty. The explicit all-ones check also keeps the
	// lo+1 below from wrapping.
	if len(a) == 0 || lo == ^graph.VertexID(0) || lo+1 >= hi {
		return dst
	}
	a = a[gallopTo(a, 0, lo+1):]
	if end := gallopTo(a, 0, hi); end < len(a) {
		a = a[:end]
	}
	if len(a) == 0 {
		return dst
	}
	if len(b) >= gallopRatio*len(a) {
		return gallopIntersect(dst, a, b)
	}
	return IntersectMerge(dst, a, b)
}

// Bitmap is a dense bitset over vertex IDs, rebuilt per hub vertex and
// probed once per embedding touching that hub. Build keeps its own copy of
// the built list so clearing stale bits never depends on the caller's buffer
// (fetched adjacency lists live in recycled communication slabs).
type Bitmap struct {
	words []uint64
	built []graph.VertexID
}

// Build loads list into the bitmap, clearing whatever was built before.
// Amortized cost is O(|list|): old bits are cleared word-by-word from the
// retained copy, and word storage only ever grows.
func (b *Bitmap) Build(list []graph.VertexID) {
	for _, v := range b.built {
		b.words[v>>6] = 0
	}
	b.built = b.built[:0]
	if len(list) == 0 {
		return
	}
	if need := int(list[len(list)-1]>>6) + 1; need > len(b.words) {
		//khuzdulvet:ignore hotalloc word storage grows monotonically; amortized across hub builds
		b.words = make([]uint64, need)
	}
	for _, v := range list {
		b.words[v>>6] |= 1 << (v & 63)
	}
	b.built = append(b.built, list...)
}

// Contains reports whether the built list contains v.
func (b *Bitmap) Contains(v graph.VertexID) bool {
	w := int(v >> 6)
	return w < len(b.words) && b.words[w]&(1<<(v&63)) != 0
}

// IntersectBitmap appends a ∩ built(bm) to dst by probing the bitmap once
// per element of a — O(|a|) regardless of the built list's length, which is
// what makes a one-time O(|hub|) build pay for itself across a level.
func IntersectBitmap(dst, a []graph.VertexID, bm *Bitmap) []graph.VertexID {
	for _, x := range a {
		if bm.Contains(x) {
			dst = append(dst, x)
		}
	}
	return dst
}

// maxPivotLists bounds the stack-allocated cursor array of IntersectPivot.
// Compiled plans intersect at most K-1 lists and patterns are tiny, so the
// bound is never hit in practice.
const maxPivotLists = 16

// IntersectPivot appends the k-way intersection of lists to dst: the
// shortest list drives, every other list is galloping-probed with a
// persistent cursor, and exhausting any list exits early. Unlike the
// pairwise reduction of IntersectMany it never materializes intermediates,
// so clique-like steps touch each candidate exactly once.
func IntersectPivot(dst []graph.VertexID, lists [][]graph.VertexID) []graph.VertexID {
	switch len(lists) {
	case 0:
		return dst
	case 1:
		return append(dst, lists[0]...)
	case 2:
		return Intersect(dst, lists[0], lists[1])
	}
	if len(lists) > maxPivotLists {
		// Compiled plans cannot reach this arity; correctness fallback only.
		//khuzdulvet:ignore hotalloc unreachable from compiled plans (K-1 ≤ maxPivotLists)
		return IntersectMany(dst, lists, nil)
	}
	p := 0
	for i, l := range lists {
		if len(l) == 0 {
			return dst
		}
		if len(l) < len(lists[p]) {
			p = i
		}
	}
	var cursors [maxPivotLists]int
outer:
	for _, x := range lists[p] {
		for i, l := range lists {
			if i == p {
				continue
			}
			c := gallopTo(l, cursors[i], x)
			if c >= len(l) {
				break outer
			}
			cursors[i] = c
			if l[c] != x {
				continue outer
			}
		}
		dst = append(dst, x)
	}
	return dst
}

// Dispatcher is the skew-adaptive two-way kernel selector: one instance per
// plan level per worker. Callers identify each input list by its owning
// vertex (NoVertex for scratch intermediates); when a list at or above
// HubThreshold shows up for the same hub twice in a row, the dispatcher
// builds a bitmap for it and probes that for every later embedding touching
// the hub. The two-touch promotion avoids O(|hub|) build thrash when hub
// lists merely alternate. Below the threshold it escalates merge → gallop
// on measured skew, exactly like Intersect.
type Dispatcher struct {
	// HubThreshold is the list length at which bitmap promotion engages;
	// 0 disables the bitmap kernel entirely.
	HubThreshold int
	// Counts, when non-nil, receives one increment per call at the chosen
	// kernel's index.
	Counts *[NumKernels]uint64

	bm       Bitmap
	builtFor graph.VertexID
	lastHub  graph.VertexID
	hasBuilt bool
	hasLast  bool
}

// Intersect appends a ∩ b to dst through the selected kernel. av and bv name
// the vertices owning a and b (NoVertex when the list is not an adjacency
// list); the hub cache is keyed by vertex ID, which stays valid however the
// underlying buffers are recycled.
func (d *Dispatcher) Intersect(dst, a, b []graph.VertexID, av, bv graph.VertexID) []graph.VertexID {
	if len(a) > len(b) {
		a, b = b, a
		av, bv = bv, av
	}
	if len(a) == 0 {
		return dst
	}
	if d.HubThreshold > 0 && bv != NoVertex && len(b) >= d.HubThreshold {
		if d.hasBuilt && d.builtFor == bv {
			d.count(KernelBitmap)
			return IntersectBitmap(dst, a, &d.bm)
		}
		if d.hasLast && d.lastHub == bv {
			d.bm.Build(b)
			d.builtFor, d.hasBuilt = bv, true
			d.count(KernelBitmap)
			return IntersectBitmap(dst, a, &d.bm)
		}
		d.lastHub, d.hasLast = bv, true
	}
	if len(b) >= gallopRatio*len(a) {
		d.count(KernelGallop)
		return gallopIntersect(dst, a, b)
	}
	d.count(KernelMerge)
	return IntersectMerge(dst, a, b)
}

func (d *Dispatcher) count(k Kernel) {
	if d.Counts != nil {
		d.Counts[k]++
	}
}

// Subtract appends a \ b to dst.
func Subtract(dst, a, b []graph.VertexID) []graph.VertexID {
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			continue
		}
		dst = append(dst, x)
	}
	return dst
}

// Filter appends {x ∈ a : lo ≤ x < hi, x ∉ excl} to dst. excl is a small
// unsorted slice (the previously matched vertices); the lower bound is
// inclusive so that 0 means "unbounded", the upper bound exclusive.
func Filter(dst, a []graph.VertexID, lo, hi graph.VertexID, excl []graph.VertexID) []graph.VertexID {
	for _, x := range a {
		if x >= hi {
			break
		}
		if x < lo {
			continue
		}
		if contains(excl, x) {
			continue
		}
		dst = append(dst, x)
	}
	return dst
}

// Contains reports whether sorted list a contains x, via binary search.
func Contains(a []graph.VertexID, x graph.VertexID) bool {
	l, r := 0, len(a)
	for l < r {
		m := int(uint(l+r) >> 1)
		if a[m] < x {
			l = m + 1
		} else {
			r = m
		}
	}
	return l < len(a) && a[l] == x
}

// contains is linear scan over a tiny unsorted slice.
func contains(s []graph.VertexID, x graph.VertexID) bool {
	for _, y := range s {
		if y == x {
			return true
		}
	}
	return false
}

// IntersectMany appends the intersection of all lists to dst. lists must be
// non-empty; for a single list it appends a copy. The running intersection
// uses scratch storage provided by the caller (may be nil).
func IntersectMany(dst []graph.VertexID, lists [][]graph.VertexID, scratch []graph.VertexID) []graph.VertexID {
	switch len(lists) {
	case 0:
		return dst
	case 1:
		return append(dst, lists[0]...)
	case 2:
		return Intersect(dst, lists[0], lists[1])
	}
	// The running intersection shrinks monotonically, so it is narrowed in
	// place: Intersect never writes past its read cursors (see its doc), and
	// reusing scratch's backing array keeps the whole reduction allocation-free
	// once scratch has warmed up.
	cur := Intersect(scratch[:0], lists[0], lists[1])
	for i := 2; i < len(lists)-1; i++ {
		cur = Intersect(cur[:0], cur, lists[i])
	}
	return Intersect(dst, cur, lists[len(lists)-1])
}

// CountIntersect returns |a ∩ b| without materializing the result.
func CountIntersect(a, b []graph.VertexID) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	n := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// CountGreater returns |{x ∈ a : x > lo}|.
func CountGreater(a []graph.VertexID, lo graph.VertexID) int {
	l, r := 0, len(a)
	for l < r {
		m := int(uint(l+r) >> 1)
		if a[m] <= lo {
			l = m + 1
		} else {
			r = m
		}
	}
	return len(a) - l
}
