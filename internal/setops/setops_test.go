package setops

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"khuzdul/internal/graph"
)

func ids(xs ...int) []graph.VertexID {
	out := make([]graph.VertexID, len(xs))
	for i, x := range xs {
		out[i] = graph.VertexID(x)
	}
	return out
}

func equal(a, b []graph.VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIntersectBasic(t *testing.T) {
	cases := []struct{ a, b, want []graph.VertexID }{
		{ids(1, 3, 5), ids(2, 3, 5, 9), ids(3, 5)},
		{ids(), ids(1, 2), ids()},
		{ids(1, 2, 3), ids(), ids()},
		{ids(1, 2, 3), ids(1, 2, 3), ids(1, 2, 3)},
		{ids(1), ids(2), ids()},
	}
	for _, c := range cases {
		if got := Intersect(nil, c.a, c.b); !equal(got, c.want) {
			t.Errorf("Intersect(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIntersectGallopPath(t *testing.T) {
	// A short list against a long one forces the galloping branch.
	long := make([]graph.VertexID, 10000)
	for i := range long {
		long[i] = graph.VertexID(3 * i)
	}
	short := ids(0, 3, 7, 9999, 29997)
	want := ids(0, 3, 9999, 29997)
	if got := Intersect(nil, short, long); !equal(got, want) {
		t.Fatalf("gallop intersect = %v, want %v", got, want)
	}
	// Symmetric argument order must not matter.
	if got := Intersect(nil, long, short); !equal(got, want) {
		t.Fatalf("gallop intersect (swapped) = %v, want %v", got, want)
	}
}

func TestIntersectAppendsToDst(t *testing.T) {
	dst := ids(42)
	got := Intersect(dst, ids(1, 2), ids(2, 3))
	if !equal(got, ids(42, 2)) {
		t.Fatalf("append semantics broken: %v", got)
	}
}

func TestIntersectBounded(t *testing.T) {
	a, b := ids(1, 2, 3, 4, 5, 6), ids(2, 3, 4, 5, 7)
	if got := IntersectBounded(nil, a, b, 2, 5); !equal(got, ids(3, 4)) {
		t.Fatalf("bounded = %v, want [3 4]", got)
	}
	none := graph.VertexID(0)
	all := ^graph.VertexID(0)
	if got := IntersectBounded(nil, a, b, none, all); !equal(got, ids(2, 3, 4, 5)) {
		t.Fatalf("unbounded = %v", got)
	}
}

func TestSubtract(t *testing.T) {
	if got := Subtract(nil, ids(1, 2, 3, 4), ids(2, 4, 5)); !equal(got, ids(1, 3)) {
		t.Fatalf("Subtract = %v, want [1 3]", got)
	}
	if got := Subtract(nil, ids(1, 2), nil); !equal(got, ids(1, 2)) {
		t.Fatalf("Subtract with empty b = %v", got)
	}
}

func TestFilter(t *testing.T) {
	a := ids(1, 2, 3, 4, 5, 6, 7)
	got := Filter(nil, a, 2, 7, ids(4))
	if !equal(got, ids(2, 3, 5, 6)) {
		t.Fatalf("Filter = %v, want [2 3 5 6]", got)
	}
	// lo = 0 means unbounded below (inclusive semantics).
	if got := Filter(nil, ids(0, 1), 0, 7, nil); !equal(got, ids(0, 1)) {
		t.Fatalf("Filter lo=0 = %v, want [0 1]", got)
	}
}

func TestContains(t *testing.T) {
	a := ids(2, 4, 6, 8)
	for _, x := range []int{2, 4, 6, 8} {
		if !Contains(a, graph.VertexID(x)) {
			t.Fatalf("Contains(%d) = false", x)
		}
	}
	for _, x := range []int{1, 3, 9} {
		if Contains(a, graph.VertexID(x)) {
			t.Fatalf("Contains(%d) = true", x)
		}
	}
	if Contains(nil, 1) {
		t.Fatal("Contains on nil = true")
	}
}

func TestIntersectMany(t *testing.T) {
	lists := [][]graph.VertexID{
		ids(1, 2, 3, 4, 5),
		ids(2, 3, 4, 5, 6),
		ids(3, 4, 5, 6, 7),
		ids(4, 5, 9),
	}
	if got := IntersectMany(nil, lists, nil); !equal(got, ids(4, 5)) {
		t.Fatalf("IntersectMany = %v, want [4 5]", got)
	}
	if got := IntersectMany(nil, lists[:1], nil); !equal(got, lists[0]) {
		t.Fatalf("IntersectMany single = %v", got)
	}
	if got := IntersectMany(nil, nil, nil); len(got) != 0 {
		t.Fatalf("IntersectMany empty = %v", got)
	}
}

func TestCountIntersect(t *testing.T) {
	a, b := ids(1, 3, 5, 7), ids(3, 4, 5, 6, 7, 8)
	if got := CountIntersect(a, b); got != 3 {
		t.Fatalf("CountIntersect = %d, want 3", got)
	}
	if got := CountIntersect(nil, b); got != 0 {
		t.Fatalf("CountIntersect nil = %d", got)
	}
}

func TestCountGreater(t *testing.T) {
	a := ids(1, 3, 5, 7)
	if got := CountGreater(a, 3); got != 2 {
		t.Fatalf("CountGreater(3) = %d, want 2", got)
	}
	if got := CountGreater(a, 0); got != 4 {
		t.Fatalf("CountGreater(0) = %d, want 4", got)
	}
	if got := CountGreater(a, 7); got != 0 {
		t.Fatalf("CountGreater(7) = %d, want 0", got)
	}
}

// randSorted produces a strictly ascending random list.
func randSorted(rng *rand.Rand, n, max int) []graph.VertexID {
	seen := map[int]bool{}
	for len(seen) < n {
		seen[rng.Intn(max)] = true
	}
	out := make([]graph.VertexID, 0, n)
	for x := range seen {
		out = append(out, graph.VertexID(x))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// refIntersect is the trivially-correct reference.
func refIntersect(a, b []graph.VertexID) []graph.VertexID {
	m := map[graph.VertexID]bool{}
	for _, x := range b {
		m[x] = true
	}
	var out []graph.VertexID
	for _, x := range a {
		if m[x] {
			out = append(out, x)
		}
	}
	return out
}

func TestPropertyIntersectMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSorted(rng, rng.Intn(50), 200)
		b := randSorted(rng, rng.Intn(2000), 4000)
		got := Intersect(nil, a, b)
		want := refIntersect(a, b)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		// Count must agree with materialized length.
		return CountIntersect(a, b) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySubtractPartitions(t *testing.T) {
	// (a ∩ b) and (a \ b) partition a.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSorted(rng, rng.Intn(100), 300)
		b := randSorted(rng, rng.Intn(100), 300)
		in := Intersect(nil, a, b)
		out := Subtract(nil, a, b)
		if len(in)+len(out) != len(a) {
			return false
		}
		merged := append(append([]graph.VertexID{}, in...), out...)
		sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
		for i := range a {
			if merged[i] != a[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBoundedSubsetOfIntersect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSorted(rng, rng.Intn(80), 200)
		b := randSorted(rng, rng.Intn(80), 200)
		lo := graph.VertexID(rng.Intn(200))
		hi := lo + graph.VertexID(rng.Intn(100))
		got := IntersectBounded(nil, a, b, lo, hi)
		full := Intersect(nil, a, b)
		j := 0
		for _, x := range full {
			if x > lo && x < hi {
				if j >= len(got) || got[j] != x {
					return false
				}
				j++
			}
		}
		return j == len(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIntersectMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randSorted(rng, 1000, 100000)
	y := randSorted(rng, 1000, 100000)
	buf := make([]graph.VertexID, 0, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = Intersect(buf[:0], x, y)
	}
}

func BenchmarkIntersectGallop(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randSorted(rng, 30, 100000)
	y := randSorted(rng, 50000, 1000000)
	buf := make([]graph.VertexID, 0, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = Intersect(buf[:0], x, y)
	}
}

// TestIntersectManyNoAlloc pins the hotalloc fix: with warm caller-owned dst
// and scratch, the k-way running intersection must not touch the heap. The
// old implementation allocated a fresh intermediate per inner list.
func TestIntersectManyNoAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lists := make([][]graph.VertexID, 5)
	for i := range lists {
		lists[i] = randSorted(rng, 400, 2000)
	}
	dst := make([]graph.VertexID, 0, 400)
	scratch := make([]graph.VertexID, 0, 400)
	allocs := testing.AllocsPerRun(50, func() {
		dst = IntersectMany(dst[:0], lists, scratch)
	})
	if allocs != 0 {
		t.Fatalf("IntersectMany allocated %.0f times per run with warm buffers, want 0", allocs)
	}
}

// BenchmarkIntersectMany exercises the k-way running intersection with warm
// caller-owned buffers: the steady state inside the per-embedding loop, where
// any per-call allocation shows up directly in allocs/op.
func BenchmarkIntersectMany(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	lists := make([][]graph.VertexID, 5)
	for i := range lists {
		lists[i] = randSorted(rng, 800, 4000)
	}
	dst := make([]graph.VertexID, 0, 800)
	scratch := make([]graph.VertexID, 0, 800)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = IntersectMany(dst[:0], lists, scratch)
	}
}
