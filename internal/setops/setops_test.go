package setops

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"khuzdul/internal/graph"
)

func ids(xs ...int) []graph.VertexID {
	out := make([]graph.VertexID, len(xs))
	for i, x := range xs {
		out[i] = graph.VertexID(x)
	}
	return out
}

func equal(a, b []graph.VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIntersectBasic(t *testing.T) {
	cases := []struct{ a, b, want []graph.VertexID }{
		{ids(1, 3, 5), ids(2, 3, 5, 9), ids(3, 5)},
		{ids(), ids(1, 2), ids()},
		{ids(1, 2, 3), ids(), ids()},
		{ids(1, 2, 3), ids(1, 2, 3), ids(1, 2, 3)},
		{ids(1), ids(2), ids()},
	}
	for _, c := range cases {
		if got := Intersect(nil, c.a, c.b); !equal(got, c.want) {
			t.Errorf("Intersect(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIntersectGallopPath(t *testing.T) {
	// A short list against a long one forces the galloping branch.
	long := make([]graph.VertexID, 10000)
	for i := range long {
		long[i] = graph.VertexID(3 * i)
	}
	short := ids(0, 3, 7, 9999, 29997)
	want := ids(0, 3, 9999, 29997)
	if got := Intersect(nil, short, long); !equal(got, want) {
		t.Fatalf("gallop intersect = %v, want %v", got, want)
	}
	// Symmetric argument order must not matter.
	if got := Intersect(nil, long, short); !equal(got, want) {
		t.Fatalf("gallop intersect (swapped) = %v, want %v", got, want)
	}
}

func TestIntersectAppendsToDst(t *testing.T) {
	dst := ids(42)
	got := Intersect(dst, ids(1, 2), ids(2, 3))
	if !equal(got, ids(42, 2)) {
		t.Fatalf("append semantics broken: %v", got)
	}
}

func TestIntersectBounded(t *testing.T) {
	a, b := ids(1, 2, 3, 4, 5, 6), ids(2, 3, 4, 5, 7)
	if got := IntersectBounded(nil, a, b, 2, 5); !equal(got, ids(3, 4)) {
		t.Fatalf("bounded = %v, want [3 4]", got)
	}
	none := graph.VertexID(0)
	all := ^graph.VertexID(0)
	if got := IntersectBounded(nil, a, b, none, all); !equal(got, ids(2, 3, 4, 5)) {
		t.Fatalf("unbounded = %v", got)
	}
}

func TestSubtract(t *testing.T) {
	if got := Subtract(nil, ids(1, 2, 3, 4), ids(2, 4, 5)); !equal(got, ids(1, 3)) {
		t.Fatalf("Subtract = %v, want [1 3]", got)
	}
	if got := Subtract(nil, ids(1, 2), nil); !equal(got, ids(1, 2)) {
		t.Fatalf("Subtract with empty b = %v", got)
	}
}

func TestFilter(t *testing.T) {
	a := ids(1, 2, 3, 4, 5, 6, 7)
	got := Filter(nil, a, 2, 7, ids(4))
	if !equal(got, ids(2, 3, 5, 6)) {
		t.Fatalf("Filter = %v, want [2 3 5 6]", got)
	}
	// lo = 0 means unbounded below (inclusive semantics).
	if got := Filter(nil, ids(0, 1), 0, 7, nil); !equal(got, ids(0, 1)) {
		t.Fatalf("Filter lo=0 = %v, want [0 1]", got)
	}
}

func TestContains(t *testing.T) {
	a := ids(2, 4, 6, 8)
	for _, x := range []int{2, 4, 6, 8} {
		if !Contains(a, graph.VertexID(x)) {
			t.Fatalf("Contains(%d) = false", x)
		}
	}
	for _, x := range []int{1, 3, 9} {
		if Contains(a, graph.VertexID(x)) {
			t.Fatalf("Contains(%d) = true", x)
		}
	}
	if Contains(nil, 1) {
		t.Fatal("Contains on nil = true")
	}
}

func TestIntersectMany(t *testing.T) {
	lists := [][]graph.VertexID{
		ids(1, 2, 3, 4, 5),
		ids(2, 3, 4, 5, 6),
		ids(3, 4, 5, 6, 7),
		ids(4, 5, 9),
	}
	if got := IntersectMany(nil, lists, nil); !equal(got, ids(4, 5)) {
		t.Fatalf("IntersectMany = %v, want [4 5]", got)
	}
	if got := IntersectMany(nil, lists[:1], nil); !equal(got, lists[0]) {
		t.Fatalf("IntersectMany single = %v", got)
	}
	if got := IntersectMany(nil, nil, nil); len(got) != 0 {
		t.Fatalf("IntersectMany empty = %v", got)
	}
}

func TestCountIntersect(t *testing.T) {
	a, b := ids(1, 3, 5, 7), ids(3, 4, 5, 6, 7, 8)
	if got := CountIntersect(a, b); got != 3 {
		t.Fatalf("CountIntersect = %d, want 3", got)
	}
	if got := CountIntersect(nil, b); got != 0 {
		t.Fatalf("CountIntersect nil = %d", got)
	}
}

func TestCountGreater(t *testing.T) {
	a := ids(1, 3, 5, 7)
	if got := CountGreater(a, 3); got != 2 {
		t.Fatalf("CountGreater(3) = %d, want 2", got)
	}
	if got := CountGreater(a, 0); got != 4 {
		t.Fatalf("CountGreater(0) = %d, want 4", got)
	}
	if got := CountGreater(a, 7); got != 0 {
		t.Fatalf("CountGreater(7) = %d, want 0", got)
	}
}

// randSorted produces a strictly ascending random list.
func randSorted(rng *rand.Rand, n, max int) []graph.VertexID {
	seen := map[int]bool{}
	for len(seen) < n {
		seen[rng.Intn(max)] = true
	}
	out := make([]graph.VertexID, 0, n)
	for x := range seen {
		out = append(out, graph.VertexID(x))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// refIntersect is the trivially-correct reference.
func refIntersect(a, b []graph.VertexID) []graph.VertexID {
	m := map[graph.VertexID]bool{}
	for _, x := range b {
		m[x] = true
	}
	var out []graph.VertexID
	for _, x := range a {
		if m[x] {
			out = append(out, x)
		}
	}
	return out
}

func TestPropertyIntersectMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSorted(rng, rng.Intn(50), 200)
		b := randSorted(rng, rng.Intn(2000), 4000)
		got := Intersect(nil, a, b)
		want := refIntersect(a, b)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		// Count must agree with materialized length.
		return CountIntersect(a, b) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySubtractPartitions(t *testing.T) {
	// (a ∩ b) and (a \ b) partition a.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSorted(rng, rng.Intn(100), 300)
		b := randSorted(rng, rng.Intn(100), 300)
		in := Intersect(nil, a, b)
		out := Subtract(nil, a, b)
		if len(in)+len(out) != len(a) {
			return false
		}
		merged := append(append([]graph.VertexID{}, in...), out...)
		sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
		for i := range a {
			if merged[i] != a[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBoundedSubsetOfIntersect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSorted(rng, rng.Intn(80), 200)
		b := randSorted(rng, rng.Intn(80), 200)
		lo := graph.VertexID(rng.Intn(200))
		hi := lo + graph.VertexID(rng.Intn(100))
		got := IntersectBounded(nil, a, b, lo, hi)
		full := Intersect(nil, a, b)
		j := 0
		for _, x := range full {
			if x > lo && x < hi {
				if j >= len(got) || got[j] != x {
					return false
				}
				j++
			}
		}
		return j == len(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIntersectMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randSorted(rng, 1000, 100000)
	y := randSorted(rng, 1000, 100000)
	buf := make([]graph.VertexID, 0, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = Intersect(buf[:0], x, y)
	}
}

func BenchmarkIntersectGallop(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randSorted(rng, 30, 100000)
	y := randSorted(rng, 50000, 1000000)
	buf := make([]graph.VertexID, 0, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = Intersect(buf[:0], x, y)
	}
}

// TestIntersectManyNoAlloc pins the hotalloc fix: with warm caller-owned dst
// and scratch, the k-way running intersection must not touch the heap. The
// old implementation allocated a fresh intermediate per inner list.
func TestIntersectManyNoAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lists := make([][]graph.VertexID, 5)
	for i := range lists {
		lists[i] = randSorted(rng, 400, 2000)
	}
	dst := make([]graph.VertexID, 0, 400)
	scratch := make([]graph.VertexID, 0, 400)
	allocs := testing.AllocsPerRun(50, func() {
		dst = IntersectMany(dst[:0], lists, scratch)
	})
	if allocs != 0 {
		t.Fatalf("IntersectMany allocated %.0f times per run with warm buffers, want 0", allocs)
	}
}

// BenchmarkIntersectMany exercises the k-way running intersection with warm
// caller-owned buffers: the steady state inside the per-embedding loop, where
// any per-call allocation shows up directly in allocs/op.
func BenchmarkIntersectMany(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	lists := make([][]graph.VertexID, 5)
	for i := range lists {
		lists[i] = randSorted(rng, 800, 4000)
	}
	dst := make([]graph.VertexID, 0, 800)
	scratch := make([]graph.VertexID, 0, 800)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = IntersectMany(dst[:0], lists, scratch)
	}
}

// --- pattern-aware kernel tests -----------------------------------------

func TestIntersectMergeGallopAgree(t *testing.T) {
	// The exported unconditional kernels must agree with the reference on
	// the same inputs Intersect sees, including both argument orders.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSorted(rng, rng.Intn(60), 300)
		b := randSorted(rng, rng.Intn(3000), 6000)
		want := refIntersect(a, b)
		return equal(IntersectMerge(nil, a, b), want) &&
			equal(IntersectMerge(nil, b, a), want) &&
			equal(IntersectGallop(nil, a, b), want) &&
			equal(IntersectGallop(nil, b, a), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectBitmapMatchesReference(t *testing.T) {
	var bm Bitmap
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSorted(rng, rng.Intn(100), 500)
		b := randSorted(rng, rng.Intn(400), 2000)
		bm.Build(b)
		return equal(IntersectBitmap(nil, a, &bm), refIntersect(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBitmapRebuildClearsStaleBits(t *testing.T) {
	var bm Bitmap
	bm.Build(ids(1, 64, 200))
	bm.Build(ids(2, 65))
	for _, v := range []int{1, 64, 200} {
		if bm.Contains(graph.VertexID(v)) {
			t.Fatalf("stale bit %d survived rebuild", v)
		}
	}
	if !bm.Contains(2) || !bm.Contains(65) {
		t.Fatal("rebuilt bits missing")
	}
	// Rebuilding after the caller's buffer was recycled must still clear
	// correctly: Build retains its own copy of the list.
	buf := ids(3, 130)
	bm.Build(buf)
	buf[0], buf[1] = 999, 1000 // caller recycles the buffer
	bm.Build(ids(7))
	if bm.Contains(3) || bm.Contains(130) {
		t.Fatal("stale bits survived a rebuild after buffer recycling")
	}
	bm.Build(nil)
	if bm.Contains(7) {
		t.Fatal("empty build left bits behind")
	}
}

func TestIntersectPivotMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 3 + rng.Intn(4)
		lists := make([][]graph.VertexID, k)
		for i := range lists {
			lists[i] = randSorted(rng, rng.Intn(200), 400)
		}
		want := lists[0]
		for _, l := range lists[1:] {
			want = refIntersect(want, l)
		}
		return equal(IntersectPivot(nil, lists), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectPivotEdgeCases(t *testing.T) {
	if got := IntersectPivot(nil, nil); len(got) != 0 {
		t.Fatalf("pivot of no lists = %v", got)
	}
	one := [][]graph.VertexID{ids(1, 2, 3)}
	if got := IntersectPivot(nil, one); !equal(got, ids(1, 2, 3)) {
		t.Fatalf("pivot of one list = %v", got)
	}
	two := [][]graph.VertexID{ids(1, 2, 3), ids(2, 3, 4)}
	if got := IntersectPivot(nil, two); !equal(got, ids(2, 3)) {
		t.Fatalf("pivot of two lists = %v", got)
	}
	empty := [][]graph.VertexID{ids(1, 2), nil, ids(2, 3)}
	if got := IntersectPivot(nil, empty); len(got) != 0 {
		t.Fatalf("pivot with an empty list = %v", got)
	}
	// Beyond maxPivotLists the correctness fallback must still be exact.
	many := make([][]graph.VertexID, maxPivotLists+2)
	for i := range many {
		many[i] = ids(5, 9, 42)
	}
	if got := IntersectPivot(nil, many); !equal(got, ids(5, 9, 42)) {
		t.Fatalf("pivot fallback = %v", got)
	}
}

func TestDispatcherMatchesReference(t *testing.T) {
	// The dispatcher must stay exact whatever kernel it picks, across
	// random hub thresholds, list shapes, and vertex keys — including the
	// bitmap path once the same hub repeats (two-touch promotion).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := Dispatcher{HubThreshold: 1 + rng.Intn(64)}
		hub := randSorted(rng, 200+rng.Intn(400), 4000)
		hubID := graph.VertexID(rng.Intn(100))
		for step := 0; step < 20; step++ {
			a := randSorted(rng, rng.Intn(50), 4000)
			b, bv := hub, hubID
			if rng.Intn(3) == 0 { // sometimes a non-hub pairing
				b, bv = randSorted(rng, rng.Intn(40), 4000), NoVertex
			}
			if !equal(d.Intersect(nil, a, b, NoVertex, bv), refIntersect(a, b)) {
				return false
			}
			// Argument order must not matter.
			if !equal(d.Intersect(nil, b, a, bv, NoVertex), refIntersect(a, b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDispatcherPromotesHubOnSecondTouch(t *testing.T) {
	var counts [NumKernels]uint64
	d := Dispatcher{HubThreshold: 4, Counts: &counts}
	hub := ids(1, 2, 3, 4, 5, 6, 7, 8)
	probe := ids(2, 5, 9)
	if got := d.Intersect(nil, probe, hub, NoVertex, 7); !equal(got, ids(2, 5)) {
		t.Fatalf("first touch = %v", got)
	}
	if counts[KernelBitmap] != 0 {
		t.Fatal("bitmap fired on first touch; build thrash guard broken")
	}
	if got := d.Intersect(nil, probe, hub, NoVertex, 7); !equal(got, ids(2, 5)) {
		t.Fatalf("second touch = %v", got)
	}
	if counts[KernelBitmap] != 1 {
		t.Fatalf("bitmap count after second touch = %d, want 1", counts[KernelBitmap])
	}
	// Third touch probes the cached bitmap without rebuilding.
	d.Intersect(nil, probe, hub, NoVertex, 7)
	if counts[KernelBitmap] != 2 {
		t.Fatalf("bitmap count after third touch = %d, want 2", counts[KernelBitmap])
	}
	// A scratch intermediate (NoVertex) of hub length must never promote.
	d2 := Dispatcher{HubThreshold: 4, Counts: &counts}
	for i := 0; i < 3; i++ {
		d2.Intersect(nil, probe, hub, NoVertex, NoVertex)
	}
	if counts[KernelBitmap] != 2 {
		t.Fatal("NoVertex list was hub-promoted")
	}
}

func TestIntersectBoundedGallopPath(t *testing.T) {
	// Lopsided sizes must agree with the linear reference on bounds,
	// including lo/hi edge values, the exclusive-bound semantics, and the
	// lo = all-ones / empty-interval guards.
	long := make([]graph.VertexID, 20000)
	for i := range long {
		long[i] = graph.VertexID(2 * i)
	}
	short := ids(0, 2, 5, 1000, 39998)
	ref := func(a, b []graph.VertexID, lo, hi graph.VertexID) []graph.VertexID {
		var out []graph.VertexID
		for _, x := range refIntersect(a, b) {
			if x > lo && x < hi {
				out = append(out, x)
			}
		}
		return out
	}
	cases := []struct{ lo, hi graph.VertexID }{
		{0, ^graph.VertexID(0)}, {0, 1000}, {2, 39998}, {1000, 1000},
		{39998, ^graph.VertexID(0)}, {^graph.VertexID(0), ^graph.VertexID(0)}, {5, 0},
	}
	for _, c := range cases {
		got := IntersectBounded(nil, short, long, c.lo, c.hi)
		want := ref(short, long, c.lo, c.hi)
		if !equal(got, want) {
			t.Errorf("IntersectBounded(lo=%d, hi=%d) = %v, want %v", c.lo, c.hi, got, want)
		}
		// Swapped argument order takes the same clipped path.
		if got := IntersectBounded(nil, long, short, c.lo, c.hi); !equal(got, want) {
			t.Errorf("IntersectBounded swapped (lo=%d, hi=%d) = %v, want %v", c.lo, c.hi, got, want)
		}
	}
}

func TestPropertyBoundedMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSorted(rng, rng.Intn(30), 200)
		b := randSorted(rng, rng.Intn(3000), 6000) // lopsided: gallop path
		lo := graph.VertexID(rng.Intn(200))
		hi := lo + graph.VertexID(rng.Intn(100))
		got := IntersectBounded(nil, a, b, lo, hi)
		j := 0
		for _, x := range refIntersect(a, b) {
			if x > lo && x < hi {
				if j >= len(got) || got[j] != x {
					return false
				}
				j++
			}
		}
		return j == len(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Alloc-pinning tests: with warm buffers, the new kernels must never touch
// the heap in steady state (the hotalloc invariant, pinned at runtime).

func TestIntersectBitmapNoAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randSorted(rng, 200, 4000)
	hub := randSorted(rng, 1500, 4000)
	var bm Bitmap
	bm.Build(hub) // warm the word storage and the retained copy
	dst := make([]graph.VertexID, 0, 200)
	allocs := testing.AllocsPerRun(50, func() {
		bm.Build(hub)
		dst = IntersectBitmap(dst[:0], a, &bm)
	})
	if allocs != 0 {
		t.Fatalf("bitmap build+probe allocated %.0f times per run with warm storage, want 0", allocs)
	}
}

func TestIntersectPivotNoAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lists := make([][]graph.VertexID, 5)
	for i := range lists {
		lists[i] = randSorted(rng, 400, 2000)
	}
	dst := make([]graph.VertexID, 0, 400)
	allocs := testing.AllocsPerRun(50, func() {
		dst = IntersectPivot(dst[:0], lists)
	})
	if allocs != 0 {
		t.Fatalf("IntersectPivot allocated %.0f times per run with warm dst, want 0", allocs)
	}
}

func TestDispatcherNoAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randSorted(rng, 100, 4000)
	hub := randSorted(rng, 2000, 4000)
	d := Dispatcher{HubThreshold: 256}
	dst := make([]graph.VertexID, 0, 100)
	// Warm: two touches build the bitmap, growing its storage once.
	dst = d.Intersect(dst[:0], a, hub, NoVertex, 1)
	dst = d.Intersect(dst[:0], a, hub, NoVertex, 1)
	allocs := testing.AllocsPerRun(50, func() {
		dst = d.Intersect(dst[:0], a, hub, NoVertex, 1)
	})
	if allocs != 0 {
		t.Fatalf("dispatcher bitmap probe allocated %.0f times per run, want 0", allocs)
	}
}

func TestIntersectBoundedNoAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randSorted(rng, 30, 2000)
	b := randSorted(rng, 2000, 40000)
	dst := make([]graph.VertexID, 0, 30)
	allocs := testing.AllocsPerRun(50, func() {
		dst = IntersectBounded(dst[:0], a, b, 100, 1900)
	})
	if allocs != 0 {
		t.Fatalf("IntersectBounded allocated %.0f times per run with warm dst, want 0", allocs)
	}
}

// BenchmarkIntersectHubMerge is the generic-merge baseline on the identical
// skewed hub input that BenchmarkIntersectBitmap probes: the pair is the
// before/after evidence for the dispatcher's hub promotion.
func BenchmarkIntersectHubMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randSorted(rng, 200, 1<<20)
	hub := randSorted(rng, 100000, 1<<20)
	dst := make([]graph.VertexID, 0, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = IntersectMerge(dst[:0], a, hub)
	}
}

func BenchmarkIntersectBitmap(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randSorted(rng, 200, 1<<20)
	hub := randSorted(rng, 100000, 1<<20)
	var bm Bitmap
	bm.Build(hub)
	dst := make([]graph.VertexID, 0, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = IntersectBitmap(dst[:0], a, &bm)
	}
}

func BenchmarkIntersectPivot(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	lists := make([][]graph.VertexID, 4)
	for i := range lists {
		lists[i] = randSorted(rng, 800, 4000)
	}
	lists[2] = randSorted(rng, 60, 4000) // one short pivot list, the clique shape
	dst := make([]graph.VertexID, 0, 60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = IntersectPivot(dst[:0], lists)
	}
}
