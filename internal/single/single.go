// Package single implements the single-machine GPM systems the paper
// compares against in Table 3: AutomineIH (the authors' in-house Automine
// implementation), a Peregrine-like pattern-aware engine, and a
// Pangolin-like engine whose distinguishing feature is the orientation (DAG)
// preprocessing for triangle/clique counting. All three share a
// multithreaded depth-first plan executor with dynamic root distribution;
// they differ in schedule style, vertical computation sharing, and
// preprocessing — the algorithmic distinctions the paper attributes to each
// system.
package single

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"khuzdul/internal/graph"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
)

// Engine is one single-machine GPM system configuration.
type Engine struct {
	name        string
	style       plan.Style
	vcs         bool
	orientation bool
}

// AutomineIH returns the in-house Automine configuration: canonical greedy
// schedules with vertical computation sharing.
func AutomineIH() *Engine {
	return &Engine{name: "AutomineIH", style: plan.StyleAutomine, vcs: true}
}

// PeregrineLike returns a Peregrine-flavored configuration: pattern-aware
// exploration with its own (cost-model) schedules, no intermediate reuse.
func PeregrineLike() *Engine {
	return &Engine{name: "Peregrine", style: plan.StyleGraphPi, vcs: false}
}

// PangolinLike returns a Pangolin-flavored configuration: like Automine plus
// the orientation optimization for clique-shaped patterns, which converts
// the input to a DAG and drops symmetry restrictions (paper §7.2 notes
// Pangolin's TC advantage on skewed graphs comes from exactly this).
func PangolinLike() *Engine {
	return &Engine{name: "Pangolin", style: plan.StyleAutomine, vcs: true, orientation: true}
}

// AutomineIHOriented returns AutomineIH with the orientation preprocessing
// enabled, as the paper configures it for the Table 5 large-graph runs.
func AutomineIHOriented() *Engine {
	return &Engine{name: "AutomineIH+orient", style: plan.StyleAutomine, vcs: true, orientation: true}
}

// Name returns the system name for experiment output.
func (e *Engine) Name() string { return e.name }

// Result reports one single-machine run.
type Result struct {
	Count   uint64
	Elapsed time.Duration
	// ModeledElapsed is the modeled parallel runtime: measured per-worker
	// busy time divided over the thread count (root distribution is
	// dynamic, so work is near-balanced). Valid on any host core count.
	ModeledElapsed time.Duration
}

// CountPattern counts pat's embeddings in g using the engine's
// configuration and the given number of threads.
func (e *Engine) CountPattern(g *graph.Graph, pat *pattern.Pattern, induced bool, threads int) (Result, error) {
	start := time.Now()
	target := g
	opts := plan.Options{Style: e.style, Induced: induced, DisableVCS: !e.vcs, Stats: plan.StatsOf(g)}
	if e.orientation && isClique(pat) && !induced {
		target = graph.Orient(g)
		opts.DisableSymmetryBreak = true
		opts.Stats = plan.StatsOf(target)
	}
	pl, err := plan.Compile(pat, opts)
	if err != nil {
		return Result{}, fmt.Errorf("%s: %w", e.name, err)
	}
	count, busy := ParallelCountTimed(pl, target, threads)
	return Result{
		Count:          count,
		Elapsed:        time.Since(start),
		ModeledElapsed: busy / time.Duration(max(threads, 1)),
	}, nil
}

// CountMotifs counts all connected size-k patterns (induced), returning the
// per-pattern counts and the total elapsed time.
func (e *Engine) CountMotifs(g *graph.Graph, k, threads int) ([]uint64, Result, error) {
	start := time.Now()
	var counts []uint64
	var total uint64
	var modeled time.Duration
	for _, pat := range pattern.ConnectedPatterns(k) {
		r, err := e.CountPattern(g, pat, true, threads)
		if err != nil {
			return nil, Result{}, err
		}
		counts = append(counts, r.Count)
		total += r.Count
		modeled += r.ModeledElapsed
	}
	return counts, Result{Count: total, Elapsed: time.Since(start), ModeledElapsed: modeled}, nil
}

// isClique reports whether pat is a complete graph.
func isClique(pat *pattern.Pattern) bool {
	k := pat.NumVertices()
	return pat.NumEdges() == k*(k-1)/2
}

// ParallelCount runs a plan over every vertex of g with dynamic root
// distribution: workers claim fixed-size root ranges from an atomic cursor,
// each with its own executor. This is the shared execution path of all
// single-machine systems.
func ParallelCount(pl *plan.Plan, g *graph.Graph, threads int) uint64 {
	count, _ := ParallelCountTimed(pl, g, threads)
	return count
}

// ParallelCountTimed is ParallelCount that also reports the summed worker
// busy time, from which callers derive a host-independent modeled runtime.
func ParallelCountTimed(pl *plan.Plan, g *graph.Graph, threads int) (uint64, time.Duration) {
	var labelOf plan.LabelFunc
	if g.Labeled() {
		labelOf = g.Label
	}
	if threads <= 1 {
		t0 := time.Now()
		var total uint64
		ex := plan.NewExecutor(pl, g.Neighbors, labelOf)
		installEdgeOracle(ex, g)
		for v := 0; v < g.NumVertices(); v++ {
			total += ex.CountRoot(graph.VertexID(v))
		}
		return total, time.Since(t0)
	}
	const grain = 256
	n := g.NumVertices()
	var cursor atomic.Int64
	var total atomic.Uint64
	var busy atomic.Int64
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			ex := plan.NewExecutor(pl, g.Neighbors, labelOf)
			installEdgeOracle(ex, g)
			var local uint64
			for {
				start := int(cursor.Add(grain)) - grain
				if start >= n {
					break
				}
				end := start + grain
				if end > n {
					end = n
				}
				for v := start; v < end; v++ {
					local += ex.CountRoot(graph.VertexID(v))
				}
			}
			total.Add(local)
			busy.Add(int64(time.Since(t0)))
		}()
	}
	wg.Wait()
	return total.Load(), time.Duration(busy.Load())
}

func installEdgeOracle(ex *plan.Executor, g *graph.Graph) {
	if g.EdgeLabeled() {
		ex.SetEdgeLabelOf(plan.EdgeLabelOracle(g))
	}
}
