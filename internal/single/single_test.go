package single

import (
	"testing"

	"khuzdul/internal/graph"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
)

func TestAllSystemsMatchBruteForce(t *testing.T) {
	g := graph.RMATDefault(100, 500, 101)
	systems := []*Engine{AutomineIH(), PeregrineLike(), PangolinLike()}
	for _, pat := range []*pattern.Pattern{
		pattern.Triangle(), pattern.Clique(4), pattern.CycleP(4), pattern.Clique(5),
	} {
		want := plan.BruteForceCount(g, pat, false)
		for _, sys := range systems {
			for _, threads := range []int{1, 4} {
				res, err := sys.CountPattern(g, pat, false, threads)
				if err != nil {
					t.Fatal(err)
				}
				if res.Count != want {
					t.Errorf("%s %v threads=%d: %d, want %d",
						sys.Name(), pat, threads, res.Count, want)
				}
			}
		}
	}
}

func TestInducedCounts(t *testing.T) {
	g := graph.RMATDefault(80, 400, 103)
	for _, pat := range []*pattern.Pattern{pattern.CycleP(4), pattern.StarP(4)} {
		want := plan.BruteForceCount(g, pat, true)
		res, err := AutomineIH().CountPattern(g, pat, true, 2)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != want {
			t.Errorf("induced %v: %d, want %d", pat, res.Count, want)
		}
	}
}

func TestPangolinUsesOrientationOnlyForCliques(t *testing.T) {
	// Orientation must not be applied to non-clique patterns (it would be
	// incorrect); verify the 4-cycle count is right under PangolinLike.
	g := graph.RMATDefault(90, 450, 107)
	want := plan.BruteForceCount(g, pattern.CycleP(4), false)
	res, err := PangolinLike().CountPattern(g, pattern.CycleP(4), false, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Fatalf("Pangolin 4-cycle: %d, want %d", res.Count, want)
	}
	// And induced cliques must not take the orientation path either.
	wantInduced := plan.BruteForceCount(g, pattern.Triangle(), true)
	res, err = PangolinLike().CountPattern(g, pattern.Triangle(), true, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != wantInduced {
		t.Fatalf("Pangolin induced triangle: %d, want %d", res.Count, wantInduced)
	}
}

func TestCountMotifs(t *testing.T) {
	g := graph.RMATDefault(60, 300, 109)
	counts, total, err := AutomineIH().CountMotifs(g, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 2 {
		t.Fatalf("3-motif pattern count = %d, want 2", len(counts))
	}
	var want uint64
	for _, pat := range pattern.ConnectedPatterns(3) {
		want += plan.BruteForceCount(g, pat, true)
	}
	if total.Count != want {
		t.Fatalf("3-motif total = %d, want %d", total.Count, want)
	}
}

func TestParallelCountAgreesWithSerial(t *testing.T) {
	g := graph.RMATDefault(150, 900, 113)
	pl := plan.MustCompile(pattern.Clique(4), plan.Options{Style: plan.StyleGraphPi})
	serial := plan.CountGraph(pl, g)
	for _, threads := range []int{2, 3, 8} {
		if got := ParallelCount(pl, g, threads); got != serial {
			t.Errorf("threads=%d: %d, want %d", threads, got, serial)
		}
	}
}
