// Package khuzdul is the public API of the Khuzdul distributed graph
// pattern mining engine — a from-scratch reproduction of "Khuzdul: Efficient
// and Scalable Distributed Graph Pattern Mining Engine" (ASPLOS 2023).
//
// The library mines patterns (triangles, cliques, motifs, frequent labeled
// subgraphs) over large graphs on a simulated multi-machine cluster: the
// graph is 1-D hash partitioned across nodes, and each node runs the
// Khuzdul engine — extendable embeddings scheduled with BFS-DFS hybrid
// exploration, circulant communication batching, and GPM-specific data
// reuse (vertical, horizontal, static cache).
//
// Quick start:
//
//	g := khuzdul.RMAT(100_000, 1_000_000, 42)
//	eng, _ := khuzdul.Open(g, khuzdul.Config{Nodes: 8, Threads: 4})
//	defer eng.Close()
//	res, _ := eng.Triangles()
//	fmt.Println(res.Count, res.Elapsed, res.TrafficBytes)
package khuzdul

import (
	"fmt"
	"io"
	"time"

	"khuzdul/internal/apps"
	"khuzdul/internal/cache"
	"khuzdul/internal/cluster"
	"khuzdul/internal/fault"
	"khuzdul/internal/fsm"
	"khuzdul/internal/graph"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
	"khuzdul/internal/service"
)

// Graph is an immutable in-memory undirected graph in CSR form.
type Graph = graph.Graph

// VertexID identifies a graph vertex.
type VertexID = graph.VertexID

// Label is a vertex label.
type Label = graph.Label

// Pattern is a small connected pattern graph to mine for.
type Pattern = pattern.Pattern

// System selects which ported client GPM system compiles the enumeration
// schedule.
type System = apps.System

// Client system choices.
const (
	// Automine uses k-Automine's canonical greedy schedules.
	Automine = apps.KAutomine
	// GraphPi uses k-GraphPi's cost-model schedule search (default).
	GraphPi = apps.KGraphPi
)

// Graph constructors and I/O, re-exported from the graph substrate.
var (
	// RMAT generates a skewed scale-free graph (n vertices, ~m edges).
	RMAT = graph.RMATDefault
	// Uniform generates an Erdős–Rényi-style random graph.
	Uniform = graph.Uniform
	// ReadEdgeList parses SNAP-style "u v" text.
	ReadEdgeList = graph.ReadEdgeList
	// ReadBinary reads the compact binary CSR format.
	ReadBinary = graph.ReadBinary
	// Orient converts a graph to a DAG by degree order (the orientation
	// preprocessing for triangle/clique counting on skewed graphs).
	Orient = graph.Orient
	// RandomLabels draws uniform vertex labels for FSM workloads.
	RandomLabels = graph.RandomLabels
	// FromLabeledEdges builds an edge-labeled graph (the paper's §2.1
	// extension, implemented here).
	FromLabeledEdges = graph.FromLabeledEdges
)

// LabeledEdge is an undirected edge carrying an edge label.
type LabeledEdge = graph.LabeledEdge

// WriteEdgeList writes a graph as edge-list text.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// WriteBinary writes a graph in the binary CSR format.
func WriteBinary(w io.Writer, g *Graph) error { return graph.WriteBinary(w, g) }

// ParsePattern resolves a pattern name ("triangle", "K5", "4-cycle",
// "house", or an explicit "n:u-v,..." edge list).
func ParsePattern(name string) (*Pattern, error) { return pattern.Parse(name) }

// Clique returns the complete pattern on k vertices.
func Clique(k int) *Pattern { return pattern.Clique(k) }

// Config tunes the simulated cluster and per-node engines. The zero value
// is a single node with one thread and no cache.
type Config struct {
	// Nodes is the number of simulated machines.
	Nodes int
	// Sockets is the NUMA socket count per machine (1 = no NUMA).
	Sockets int
	// Threads is the compute worker count per socket.
	Threads int
	// ChunkSize is the BFS-DFS chunk capacity in embeddings (0 = default).
	ChunkSize int
	// CacheFraction sizes the per-node static cache relative to the graph
	// (paper: 0.05–0.15; 0 disables).
	CacheFraction float64
	// CachePolicy is "static" (default), "fifo", "lifo", "lru" or "mru".
	CachePolicy string
	// CacheDegreeThreshold is the static cache admission threshold.
	CacheDegreeThreshold uint32
	// DisableHDS turns off horizontal data sharing.
	DisableHDS bool
	// HubThreshold, when nonzero, overrides the hub-vertex degree threshold
	// for the bitmap intersection kernel (0 derives it from the graph's
	// degree histogram; set it above the maximum degree to disable the
	// kernel on pathologically skewed inputs).
	HubThreshold uint32
	// TCP routes all remote fetches through loopback TCP sockets instead of
	// the in-process fabric.
	TCP bool
	// InFlight bounds how many multiplexed requests the TCP fabric keeps
	// outstanding per peer connection (0 = the fabric default, 16). Only
	// meaningful with TCP.
	InFlight int
	// FaultProfile injects deterministic faults into the fabric, in
	// fault.ParseProfile syntax, e.g. "seed=7,err=0.05,latency=200us,
	// crash=2@500". Empty, "none" and "off" disable injection (the default;
	// no overhead). A non-empty profile enables the resilience layer.
	FaultProfile string
	// FetchTimeout bounds each remote fetch attempt. Setting it enables the
	// resilience layer (default 250ms once enabled).
	FetchTimeout time.Duration
	// FetchRetries is the retry budget per fetch after the first attempt.
	// Setting it enables the resilience layer (default 5 once enabled).
	FetchRetries int
	// Heartbeat runs a heartbeat failure detector: each machine pings every
	// peer and a peer missing three consecutive pings is declared dead for
	// all workers at once, ahead of per-fetch circuit breakers. Enables the
	// resilience layer.
	Heartbeat bool
	// Speculate enables straggler speculation: once machines sit idle, the
	// slowest machine's unfinished source-vertex ranges are re-executed on
	// an idle machine, first completion wins, and counts are reconciled
	// exactly. Enables the resilience layer.
	Speculate bool
	// SharedCache keeps one static cache per NUMA slot alive across runs
	// instead of rebuilding it per run — the resident-server shape, where a
	// stream of queries shares the warm cache. Requires CacheFraction > 0 to
	// have any effect.
	SharedCache bool
}

// Result reports one mining run.
type Result struct {
	// Count is the number of embeddings found.
	Count uint64
	// Elapsed is the end-to-end wall time.
	Elapsed time.Duration
	// TrafficBytes is the exact remote-fetch traffic.
	TrafficBytes uint64
	// CacheHitRate is the static-cache hit rate in [0,1].
	CacheHitRate float64
	// Extensions is the number of fine-grained extension tasks executed.
	Extensions uint64
	// FetchRetries is the number of retried remote fetches (resilience).
	FetchRetries uint64
	// FaultsInjected is the number of injected transient fetch errors.
	FaultsInjected uint64
	// RecoveredRoots is the number of source vertices re-executed by
	// task-level recovery after a node failure.
	RecoveredRoots uint64
	// RecoveryRounds is the number of task-level recovery rounds the run
	// needed (0 on a healthy run).
	RecoveryRounds int
	// DeadNodes lists machines declared dead during the run, ascending.
	DeadNodes []int
	// CorruptFrames is the number of wire frames rejected on a CRC or
	// header mismatch (TCP fabric integrity checking).
	CorruptFrames uint64
	// Redials is the number of TCP connections re-established after a drop.
	Redials uint64
	// HeartbeatMisses is the number of heartbeat pings that timed out.
	HeartbeatMisses uint64
	// NodesSuspected is the number of peers the failure detector declared
	// suspect.
	NodesSuspected uint64
	// SpeculativeRanges is the number of root ranges re-executed by
	// straggler speculation.
	SpeculativeRanges uint64
	// SpeculationWins is the number of speculative re-executions that beat
	// the straggler.
	SpeculationWins uint64
	// PipelinedFetches is the number of remote fetches completed over a
	// multiplexed (v3) TCP connection.
	PipelinedFetches uint64
	// InFlightPeak is the per-machine high-water mark of concurrently
	// outstanding multiplexed requests.
	InFlightPeak uint64
	// KernelMerge, KernelGallop, KernelBitmap and KernelPivot count the
	// set-intersection kernel invocations the run's dispatchers selected.
	KernelMerge  uint64
	KernelGallop uint64
	KernelBitmap uint64
	KernelPivot  uint64
}

func fromCluster(r cluster.Result) Result {
	return Result{
		Count:          r.Count,
		Elapsed:        r.Elapsed,
		TrafficBytes:   r.Summary.BytesSent,
		CacheHitRate:   r.Summary.CacheHitRate(),
		Extensions:     r.Summary.Extensions,
		FetchRetries:   r.Summary.FetchRetries,
		FaultsInjected: r.Summary.FaultsInjected,
		RecoveredRoots: r.Summary.RecoveredRoots,
		RecoveryRounds: r.RecoveryRounds,
		DeadNodes:      r.DeadNodes,

		CorruptFrames:     r.Summary.CorruptFrames,
		Redials:           r.Summary.Redials,
		HeartbeatMisses:   r.Summary.HeartbeatMisses,
		NodesSuspected:    r.Summary.NodesSuspected,
		SpeculativeRanges: r.Summary.SpeculativeRanges,
		SpeculationWins:   r.Summary.SpeculationWins,
		PipelinedFetches:  r.Summary.PipelinedFetches,
		InFlightPeak:      r.Summary.InFlightPeak,

		KernelMerge:  r.Summary.KernelMerge,
		KernelGallop: r.Summary.KernelGallop,
		KernelBitmap: r.Summary.KernelBitmap,
		KernelPivot:  r.Summary.KernelPivot,
	}
}

// Engine is an open mining session over one graph.
type Engine struct {
	c   *cluster.Cluster
	sys System
}

// Open partitions g over a simulated cluster and returns a mining engine.
func Open(g *Graph, cfg Config) (*Engine, error) {
	pol, err := cache.ParsePolicy(cfg.CachePolicy)
	if err != nil {
		return nil, err
	}
	prof, err := fault.ParseProfile(cfg.FaultProfile)
	if err != nil {
		return nil, err
	}
	transport := cluster.TransportChan
	if cfg.TCP {
		transport = cluster.TransportTCP
	}
	c, err := cluster.New(g, cluster.Config{
		NumNodes:             cfg.Nodes,
		Sockets:              cfg.Sockets,
		ThreadsPerSocket:     cfg.Threads,
		ChunkSize:            cfg.ChunkSize,
		DisableHDS:           cfg.DisableHDS,
		HubThreshold:         cfg.HubThreshold,
		CacheFraction:        cfg.CacheFraction,
		CachePolicy:          pol,
		CacheDegreeThreshold: cfg.CacheDegreeThreshold,
		Transport:            transport,
		InFlight:             cfg.InFlight,
		Fault:                prof,
		FetchTimeout:         cfg.FetchTimeout,
		FetchRetries:         cfg.FetchRetries,
		Heartbeat:            cfg.Heartbeat,
		Speculate:            cfg.Speculate,
		SharedCache:          cfg.SharedCache,
	})
	if err != nil {
		return nil, err
	}
	return &Engine{c: c, sys: GraphPi}, nil
}

// Close shuts the cluster down.
func (e *Engine) Close() error { return e.c.Close() }

// Graph returns the engine's input graph.
func (e *Engine) Graph() *Graph { return e.c.Graph() }

// SetSystem selects the client GPM system for subsequent runs.
func (e *Engine) SetSystem(sys System) { e.sys = sys }

// Triangles counts triangles.
func (e *Engine) Triangles() (Result, error) {
	r, err := apps.TriangleCount(e.c, e.sys)
	return fromCluster(r), err
}

// Cliques counts k-cliques.
func (e *Engine) Cliques(k int) (Result, error) {
	r, err := apps.CliqueCount(e.c, k, e.sys)
	return fromCluster(r), err
}

// MotifResult pairs a motif pattern with its induced embedding count.
type MotifResult struct {
	Pattern *Pattern
	Count   uint64
}

// Motifs counts the induced embeddings of every connected size-k pattern
// and the combined result.
func (e *Engine) Motifs(k int) ([]MotifResult, Result, error) {
	per, combined, err := apps.MotifCount(e.c, k, e.sys)
	if err != nil {
		return nil, Result{}, err
	}
	pats := pattern.ConnectedPatterns(k)
	out := make([]MotifResult, len(per))
	for i := range per {
		out[i] = MotifResult{Pattern: pats[i], Count: per[i].Count}
	}
	return out, fromCluster(combined), nil
}

// CountPattern counts embeddings of an arbitrary pattern; induced selects
// motif semantics (non-edges must be absent).
func (e *Engine) CountPattern(p *Pattern, induced bool) (Result, error) {
	r, err := apps.PatternCount(e.c, p, e.sys, induced)
	return fromCluster(r), err
}

// FrequentPattern is one FSM result: a labeled pattern and its MNI support.
type FrequentPattern struct {
	Pattern *Pattern
	Support uint64
}

// MineFrequent runs frequent subgraph mining over a labeled graph: all
// labeled patterns with at most maxEdges edges whose MNI support reaches
// minSupport.
func (e *Engine) MineFrequent(minSupport uint64, maxEdges int) ([]FrequentPattern, time.Duration, error) {
	style := plan.StyleGraphPi
	if e.sys == Automine {
		style = plan.StyleAutomine
	}
	res, err := fsm.Mine(e.c, fsm.Config{MinSupport: minSupport, MaxEdges: maxEdges, Style: style})
	if err != nil {
		return nil, 0, err
	}
	out := make([]FrequentPattern, len(res.Frequent))
	for i, fp := range res.Frequent {
		out[i] = FrequentPattern{Pattern: fp.Pattern, Support: fp.Support}
	}
	return out, res.Elapsed, nil
}

// Query service: a resident Engine can serve pattern queries over TCP with
// admission control, per-query cancellation, and streamed partial counts.
// These are thin re-exports of internal/service.
type (
	// QueryServer is a running mining-as-a-service endpoint over one Engine.
	QueryServer = service.Server
	// QueryClient is one client connection to a QueryServer.
	QueryClient = service.Client
	// QuerySpec names one query (pattern or server-side plan reference).
	QuerySpec = service.Spec
	// QueryOutcome is the terminal answer for one query.
	QueryOutcome = service.Outcome
	// ServeConfig tunes a QueryServer (address, admission window, worker
	// budget, progress cadence, per-query deadline cap).
	ServeConfig = service.Config
	// ServiceHealth is a point-in-time server fitness snapshot: drain
	// state, admission load, and suspected-dead cluster nodes.
	ServiceHealth = service.Health
)

// Query-result sentinel errors, re-exported so callers can errors.Is them
// without importing internal packages.
var (
	// ErrQueryRejected: the admission window was full; the query never
	// started and is safe to resubmit.
	ErrQueryRejected = service.ErrRejected
	// ErrQueryCanceled: the query was aborted mid-run.
	ErrQueryCanceled = service.ErrCanceled
	// ErrQueryFailed: the server could not compile or execute the query.
	ErrQueryFailed = service.ErrQueryFailed
	// ErrQueryDeadlineExceeded: the query's deadline fired before it
	// finished; resubmit with a larger deadline.
	ErrQueryDeadlineExceeded = service.ErrDeadlineExceeded
	// ErrQueryDraining: the server is draining for shutdown; the query
	// never started and is safe to resubmit elsewhere.
	ErrQueryDraining = service.ErrDraining
)

// Serve starts a resident query server over the engine's cluster. The
// engine must stay open for the server's lifetime; close the server before
// the engine. Clusters opened with SharedCache reuse their static caches
// across the served queries.
func (e *Engine) Serve(cfg ServeConfig) (*QueryServer, error) {
	return service.New(e.c, cfg)
}

// DialQuery connects to a query server started by Serve (or `khuzdul
// serve`). A zero timeout uses the service default.
func DialQuery(addr string, timeout time.Duration) (*QueryClient, error) {
	return service.Dial(addr, timeout)
}

// ExplainPattern compiles p the way the engine's current system would and
// returns the schedule rendered as paper-style nested-loop pseudo-code.
func (e *Engine) ExplainPattern(p *Pattern, induced bool) (string, error) {
	pl, err := apps.Compile(e.sys, p, e.c.Graph(), apps.CompileOptions{Induced: induced})
	if err != nil {
		return "", err
	}
	return pl.Explain(), nil
}

// String describes the engine.
func (e *Engine) String() string {
	return fmt.Sprintf("khuzdul.Engine{%v, %d nodes}", e.sys, e.c.Config().NumNodes)
}
