package khuzdul_test

import (
	"bytes"
	"testing"

	"khuzdul"
	"khuzdul/internal/pattern"
	"khuzdul/internal/plan"
)

func open(t *testing.T, g *khuzdul.Graph, cfg khuzdul.Config) *khuzdul.Engine {
	t.Helper()
	eng, err := khuzdul.Open(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

func TestTrianglesPublicAPI(t *testing.T) {
	g := khuzdul.RMAT(200, 1000, 7)
	want := plan.BruteForceCount(g, pattern.Triangle(), false)
	eng := open(t, g, khuzdul.Config{Nodes: 4, Threads: 2, CacheFraction: 0.1})
	res, err := eng.Triangles()
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Fatalf("Triangles = %d, want %d", res.Count, want)
	}
	if res.Elapsed <= 0 || res.Extensions == 0 {
		t.Fatalf("metrics not populated: %+v", res)
	}
}

func TestCliquesAndSystems(t *testing.T) {
	g := khuzdul.RMAT(150, 800, 9)
	want := plan.BruteForceCount(g, pattern.Clique(4), false)
	eng := open(t, g, khuzdul.Config{Nodes: 3, Threads: 2})
	for _, sys := range []khuzdul.System{khuzdul.Automine, khuzdul.GraphPi} {
		eng.SetSystem(sys)
		res, err := eng.Cliques(4)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != want {
			t.Fatalf("%v Cliques(4) = %d, want %d", sys, res.Count, want)
		}
	}
}

func TestMotifsPublicAPI(t *testing.T) {
	g := khuzdul.RMAT(100, 500, 11)
	eng := open(t, g, khuzdul.Config{Nodes: 2, Threads: 2})
	per, combined, err := eng.Motifs(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 2 {
		t.Fatalf("3-motifs: %d patterns", len(per))
	}
	var sum uint64
	for _, m := range per {
		if m.Pattern == nil {
			t.Fatal("nil pattern in motif result")
		}
		sum += m.Count
	}
	if sum != combined.Count {
		t.Fatalf("per-pattern sum %d != combined %d", sum, combined.Count)
	}
}

func TestCountPatternByName(t *testing.T) {
	g := khuzdul.RMAT(100, 600, 13)
	p, err := khuzdul.ParsePattern("diamond")
	if err != nil {
		t.Fatal(err)
	}
	want := plan.BruteForceCount(g, p, true)
	eng := open(t, g, khuzdul.Config{Nodes: 2, Threads: 2})
	res, err := eng.CountPattern(p, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Fatalf("induced diamond = %d, want %d", res.Count, want)
	}
}

func TestMineFrequentPublicAPI(t *testing.T) {
	g0 := khuzdul.RMAT(120, 500, 17)
	g, err := g0.WithLabels(khuzdul.RandomLabels(120, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	eng := open(t, g, khuzdul.Config{Nodes: 2, Threads: 2})
	fps, elapsed, err := eng.MineFrequent(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	for _, fp := range fps {
		if fp.Support < 5 {
			t.Fatalf("support %d below threshold", fp.Support)
		}
	}
}

func TestTCPTransportPublicAPI(t *testing.T) {
	g := khuzdul.RMAT(120, 600, 19)
	want := plan.BruteForceCount(g, pattern.Triangle(), false)
	eng := open(t, g, khuzdul.Config{Nodes: 3, Threads: 2, TCP: true})
	res, err := eng.Triangles()
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Fatalf("TCP Triangles = %d, want %d", res.Count, want)
	}
	if res.TrafficBytes == 0 {
		t.Fatal("no traffic over TCP")
	}
}

func TestGraphIORoundTripPublicAPI(t *testing.T) {
	g := khuzdul.Uniform(100, 400, 21)
	var buf bytes.Buffer
	if err := khuzdul.WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := khuzdul.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("binary round trip lost edges")
	}
}

func TestOpenBadPolicy(t *testing.T) {
	g := khuzdul.RMAT(50, 100, 23)
	if _, err := khuzdul.Open(g, khuzdul.Config{CachePolicy: "bogus"}); err == nil {
		t.Fatal("want error for bad cache policy")
	}
}

func TestNUMAConfigPublicAPI(t *testing.T) {
	g := khuzdul.RMAT(150, 800, 27)
	want := plan.BruteForceCount(g, pattern.Triangle(), false)
	eng := open(t, g, khuzdul.Config{Nodes: 2, Sockets: 2, Threads: 1, CacheFraction: 0.05})
	res, err := eng.Triangles()
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Fatalf("NUMA Triangles = %d, want %d", res.Count, want)
	}
}

func TestTinyChunkPublicAPI(t *testing.T) {
	g := khuzdul.RMAT(100, 500, 29)
	want := plan.BruteForceCount(g, pattern.Clique(4), false)
	eng := open(t, g, khuzdul.Config{Nodes: 3, Threads: 2, ChunkSize: 8})
	res, err := eng.Cliques(4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Fatalf("tiny-chunk Cliques(4) = %d, want %d", res.Count, want)
	}
}

func TestEdgeLabeledGraphConstruction(t *testing.T) {
	g, err := khuzdul.FromLabeledEdges(0, []khuzdul.LabeledEdge{
		{U: 0, V: 1, Label: 3},
		{U: 1, V: 2, Label: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !g.EdgeLabeled() || g.NumEdges() != 2 {
		t.Fatalf("bad edge-labeled graph: %v", g)
	}
}

func TestOrientedPublicAPI(t *testing.T) {
	g := khuzdul.RMAT(200, 1200, 25)
	dag := khuzdul.Orient(g)
	if dag.NumDirectedEdges() != g.NumEdges() {
		t.Fatal("orientation edge count mismatch")
	}
}
